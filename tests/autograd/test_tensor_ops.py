"""Unit tests for elementary Tensor operations (values + gradients)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, concat, maximum, stack, where


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestForwardValues:
    def test_add(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_add_scalar(self, rng):
        a = rng.normal(size=(3, 4))
        assert np.allclose((Tensor(a) + 2.5).data, a + 2.5)

    def test_radd(self, rng):
        a = rng.normal(size=(3,))
        assert np.allclose((2.0 + Tensor(a)).data, a + 2.0)

    def test_sub(self, rng):
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
        assert np.allclose((Tensor(a) - Tensor(b)).data, a - b)

    def test_rsub(self, rng):
        a = rng.normal(size=(3,))
        assert np.allclose((1.0 - Tensor(a)).data, 1.0 - a)

    def test_mul_broadcast(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        assert np.allclose((Tensor(a) * Tensor(b)).data, a * b)

    def test_div(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4)) + 3.0
        assert np.allclose((Tensor(a) / Tensor(b)).data, a / b)

    def test_rtruediv(self, rng):
        a = rng.normal(size=(3,)) + 2.0
        assert np.allclose((1.0 / Tensor(a)).data, 1.0 / a)

    def test_neg(self, rng):
        a = rng.normal(size=(5,))
        assert np.allclose((-Tensor(a)).data, -a)

    def test_pow(self, rng):
        a = np.abs(rng.normal(size=(4,))) + 0.1
        assert np.allclose((Tensor(a) ** 3).data, a**3)

    def test_pow_rejects_tensor_exponent(self, rng):
        with pytest.raises(TypeError):
            Tensor(np.ones(3)) ** Tensor(np.ones(3))

    def test_matmul(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_batched(self, rng):
        a, b = rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_exp_log_roundtrip(self, rng):
        a = rng.normal(size=(3, 3))
        assert np.allclose(Tensor(a).exp().log().data, a)

    def test_sigmoid_range(self, rng):
        out = Tensor(rng.normal(size=100) * 50).sigmoid().data
        assert ((out >= 0) & (out <= 1)).all()
        assert np.allclose(Tensor(np.zeros(3)).sigmoid().data, 0.5)

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor(np.array([-1000.0, 1000.0])).sigmoid().data
        assert np.isfinite(out).all()
        assert np.allclose(out, [0.0, 1.0])

    def test_relu(self):
        out = Tensor(np.array([-1.0, 0.0, 2.0])).relu().data
        assert np.allclose(out, [0.0, 0.0, 2.0])

    def test_tanh(self, rng):
        a = rng.normal(size=(3,))
        assert np.allclose(Tensor(a).tanh().data, np.tanh(a))

    def test_abs(self):
        out = Tensor(np.array([-2.0, 3.0])).abs().data
        assert np.allclose(out, [2.0, 3.0])

    def test_sqrt(self, rng):
        a = np.abs(rng.normal(size=(3,))) + 0.1
        assert np.allclose(Tensor(a).sqrt().data, np.sqrt(a))

    def test_sum_axis(self, rng):
        a = rng.normal(size=(3, 4, 5))
        assert np.allclose(Tensor(a).sum(axis=1).data, a.sum(axis=1))

    def test_sum_keepdims(self, rng):
        a = rng.normal(size=(3, 4))
        assert Tensor(a).sum(axis=1, keepdims=True).shape == (3, 1)

    def test_mean(self, rng):
        a = rng.normal(size=(3, 4))
        assert np.allclose(Tensor(a).mean().data, a.mean())
        assert np.allclose(Tensor(a).mean(axis=0).data, a.mean(axis=0))

    def test_max(self, rng):
        a = rng.normal(size=(3, 4))
        assert np.allclose(Tensor(a).max(axis=1).data, a.max(axis=1))

    def test_var(self, rng):
        a = rng.normal(size=(3, 8))
        assert np.allclose(Tensor(a).var(axis=1).data, a.var(axis=1))

    def test_softmax_sums_to_one(self, rng):
        out = Tensor(rng.normal(size=(4, 7))).softmax(axis=-1).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        a = Tensor(rng.normal(size=(4, 7)))
        assert np.allclose(a.log_softmax().data, np.log(a.softmax().data))

    def test_l2_normalize_unit_norm(self, rng):
        out = Tensor(rng.normal(size=(5, 8))).l2_normalize().data
        assert np.allclose(np.linalg.norm(out, axis=-1), 1.0)

    def test_reshape_transpose(self, rng):
        a = rng.normal(size=(2, 3, 4))
        assert Tensor(a).reshape(6, 4).shape == (6, 4)
        assert Tensor(a).transpose(1, 0, 2).shape == (3, 2, 4)
        assert Tensor(a).swapaxes(0, 2).shape == (4, 3, 2)

    def test_unsqueeze_squeeze(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        assert a.unsqueeze(1).shape == (3, 1, 4)
        assert a.unsqueeze(1).squeeze(1).shape == (3, 4)

    def test_getitem_slice(self, rng):
        a = rng.normal(size=(4, 5))
        assert np.allclose(Tensor(a)[1:3, ::2].data, a[1:3, ::2])

    def test_take(self, rng):
        w = rng.normal(size=(10, 3))
        idx = np.array([[1, 2], [0, 9]])
        assert np.allclose(Tensor(w).take(idx).data, w[idx])

    def test_concat(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        assert np.allclose(concat([Tensor(a), Tensor(b)], axis=1).data, np.concatenate([a, b], axis=1))

    def test_stack(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        assert stack([Tensor(a), Tensor(b)], axis=1).shape == (2, 2, 3)

    def test_where(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        cond = a > 0
        assert np.allclose(where(cond, Tensor(a), Tensor(b)).data, np.where(cond, a, b))

    def test_maximum(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        assert np.allclose(maximum(Tensor(a), Tensor(b)).data, np.maximum(a, b))

    def test_broadcast_to(self, rng):
        a = rng.normal(size=(1, 4))
        assert Tensor(a).broadcast_to((3, 4)).shape == (3, 4)


class TestGradients:
    """Every backward rule is checked against central finite differences."""

    def _t(self, rng, *shape):
        return Tensor(rng.normal(size=shape), requires_grad=True)

    def test_add_broadcast(self, rng):
        a, b = self._t(rng, 3, 4), self._t(rng, 4)
        check_gradients(lambda a, b: a + b, [a, b])

    def test_sub_broadcast(self, rng):
        a, b = self._t(rng, 3, 4), self._t(rng, 1, 4)
        check_gradients(lambda a, b: a - b, [a, b])

    def test_mul_div(self, rng):
        a = self._t(rng, 3, 4)
        b = Tensor(rng.normal(size=(4,)) + 3.0, requires_grad=True)
        check_gradients(lambda a, b: a * b / (b + 5.0), [a, b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=(3,))) + 0.5, requires_grad=True)
        check_gradients(lambda a: a**3, [a])

    def test_matmul_2d(self, rng):
        a, b = self._t(rng, 3, 4), self._t(rng, 4, 5)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_matmul_batched(self, rng):
        a, b = self._t(rng, 2, 3, 4), self._t(rng, 2, 4, 5)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_matmul_broadcast_batch(self, rng):
        a, b = self._t(rng, 2, 3, 4), self._t(rng, 4, 5)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_matmul_vector(self, rng):
        a, v = self._t(rng, 3, 4), self._t(rng, 4)
        check_gradients(lambda a, v: a @ v, [a, v])

    def test_activations(self, rng):
        a = self._t(rng, 3, 4)
        check_gradients(lambda a: a.sigmoid(), [a])
        check_gradients(lambda a: a.tanh(), [a])
        check_gradients(lambda a: a.exp(), [a])

    def test_relu_away_from_kink(self, rng):
        a = Tensor(rng.normal(size=(20,)) + np.sign(rng.normal(size=20)) * 0.5, requires_grad=True)
        check_gradients(lambda a: a.relu(), [a])

    def test_log_sqrt(self, rng):
        a = Tensor(np.abs(rng.normal(size=(4,))) + 0.5, requires_grad=True)
        check_gradients(lambda a: a.log(), [a])
        check_gradients(lambda a: a.sqrt(), [a])

    def test_reductions(self, rng):
        a = self._t(rng, 3, 4)
        check_gradients(lambda a: a.sum(axis=0), [a])
        check_gradients(lambda a: a.mean(axis=1, keepdims=True), [a])
        check_gradients(lambda a: a.var(axis=1), [a])

    def test_max_unique(self, rng):
        a = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        check_gradients(lambda a: a.max(axis=1), [a])

    def test_softmax_family(self, rng):
        a = self._t(rng, 4, 6)
        check_gradients(lambda a: a.softmax(axis=-1), [a])
        check_gradients(lambda a: a.log_softmax(axis=-1), [a])

    def test_l2_normalize(self, rng):
        a = self._t(rng, 4, 6)
        check_gradients(lambda a: a.l2_normalize(), [a])

    def test_shape_ops(self, rng):
        a = self._t(rng, 2, 3, 4)
        check_gradients(lambda a: a.reshape(6, 4), [a])
        check_gradients(lambda a: a.transpose(2, 0, 1), [a])
        check_gradients(lambda a: a.unsqueeze(1), [a])
        check_gradients(lambda a: a.broadcast_to((2, 3, 4)).swapaxes(0, 1), [a])

    def test_indexing(self, rng):
        a = self._t(rng, 5, 4)
        check_gradients(lambda a: a[1:4, ::2], [a])
        idx = np.array([[0, 0], [4, 2]])
        check_gradients(lambda a: a.take(idx), [a])

    def test_getitem_fancy(self, rng):
        a = self._t(rng, 5, 4)
        rows = np.array([0, 2, 2])
        cols = np.array([1, 3, 3])
        check_gradients(lambda a: a[rows, cols], [a])

    def test_concat_stack(self, rng):
        a, b = self._t(rng, 2, 3), self._t(rng, 2, 3)
        check_gradients(lambda a, b: concat([a, b], axis=1), [a, b])
        check_gradients(lambda a, b: stack([a, b], axis=0), [a, b])

    def test_where_maximum(self, rng):
        a, b = self._t(rng, 6), self._t(rng, 6)
        cond = a.data > 0
        check_gradients(lambda a, b: where(cond, a, b), [a, b])
        check_gradients(lambda a, b: maximum(a, b), [a, b])

    def test_duplicate_use_accumulates(self, rng):
        a = self._t(rng, 3)
        check_gradients(lambda a: a * a + a, [a])


class TestBackwardMechanics:
    def test_backward_requires_scalar_or_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_grad_shape_validation(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = a * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(4))

    def test_no_grad_blocks_graph(self):
        from repro.autograd import no_grad

        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_detach(self):
        a = Tensor(np.ones(3), requires_grad=True)
        assert not a.detach().requires_grad

    def test_diamond_graph_gradient(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3
        out = b * b  # d/da (3a)^2 = 18a = 36
        out.backward()
        assert np.allclose(a.grad, [36.0])

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2).backward()
        (a * 2).backward()
        assert np.allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None
