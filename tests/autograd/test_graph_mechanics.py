"""Tests for autograd graph lifecycle and memory behaviour."""

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad


class TestGraphLifecycle:
    def test_backward_frees_graph(self):
        """After backward, intermediate nodes release parents/closures."""
        a = Tensor(np.ones(3), requires_grad=True)
        b = a * 2
        c = b + 1
        c.sum().backward()
        assert b._backward is None and b._parents == ()

    def test_leaf_keeps_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 3).sum().backward()
        assert np.allclose(a.grad, 3.0)

    def test_constant_branch_not_tracked(self):
        a = Tensor(np.ones(3), requires_grad=True)
        const = Tensor(np.ones(3))
        out = a + const
        assert out._parents  # graph exists via a
        out2 = const + const
        assert not out2.requires_grad

    def test_nested_no_grad(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_requires_grad_not_set_under_no_grad(self):
        with no_grad():
            t = Tensor(np.ones(2), requires_grad=True)
        assert not t.requires_grad


class TestRepr:
    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.ones(2)))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_item_scalar(self):
        assert Tensor(np.array([3.5])).item() == 3.5
