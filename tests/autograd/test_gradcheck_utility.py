"""Tests for the finite-difference checker itself (the verifier's verifier)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, numerical_gradient


class TestNumericalGradient:
    def test_matches_known_derivative(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        grad = numerical_gradient(lambda x: x * x, [x], wrt=0)
        assert np.allclose(grad, [4.0, 6.0], atol=1e-5)

    def test_independent_of_requires_grad(self):
        x = Tensor(np.array([1.5]))
        grad = numerical_gradient(lambda x: x * 3.0, [x], wrt=0)
        assert np.allclose(grad, [3.0], atol=1e-6)

    def test_restores_input(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        before = x.data.copy()
        numerical_gradient(lambda x: x.exp(), [x], wrt=0)
        assert np.array_equal(x.data, before)


class TestCheckGradients:
    def test_detects_wrong_backward(self):
        """A deliberately broken op must be caught."""

        def broken(x: Tensor) -> Tensor:
            out = x * 2.0
            # Sabotage: return a value inconsistent with the graph.
            out.data = out.data * 1.5
            return out

        x = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(AssertionError):
            check_gradients(broken, [x])

    def test_passes_correct_op(self):
        x = Tensor(np.array([[1.0, -2.0]]), requires_grad=True)
        check_gradients(lambda x: (x * x).tanh(), [x])

    def test_skips_non_grad_inputs(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        const = Tensor(np.array([5.0]))
        check_gradients(lambda x, c: x * c, [x, const])
