"""End-to-end integration tests crossing every module boundary.

Small-scale versions of the real workflow: generate data, preprocess,
train via the experiment runner, evaluate, compare systems, run a case
study — the same path the benchmarks take at full scale.
"""

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset, trivago_config
from repro.eval import (
    ExperimentConfig,
    ExperimentRunner,
    run_case_study,
    wilcoxon_reciprocal_ranks,
)


@pytest.fixture(scope="module")
def jd_runner():
    cfg = jd_appliances_config()
    dataset = prepare_dataset(
        generate_dataset(cfg, 900, seed=61), cfg.operations, min_support=3, name="jd"
    )
    return ExperimentRunner(dataset, ExperimentConfig(dim=16, epochs=4, lr=0.008, seed=1))


class TestEndToEnd:
    def test_neural_model_beats_random(self, jd_runner):
        result = jd_runner.run("SGNN-Self")
        random_h20 = 20 / jd_runner.dataset.num_items * 100
        assert result.metrics["H@20"] > 4 * random_h20

    def test_multiple_systems_comparable(self, jd_runner):
        spop = jd_runner.run("S-POP")
        neural = jd_runner.run("SGNN-Self")
        # Both score the same test sessions.
        assert spop.scores.shape == neural.scores.shape
        assert (spop.target_classes == neural.target_classes).all()

    def test_wilcoxon_between_fitted_systems(self, jd_runner):
        a = jd_runner.run("SGNN-Self")
        b = jd_runner.run("S-POP")
        sig = wilcoxon_reciprocal_ranks(a.scores, b.scores, a.target_classes)
        assert 0.0 <= sig.p_value <= 1.0

    def test_case_study_runs_on_fitted_systems(self, jd_runner):
        systems = {
            "S-POP": jd_runner.run("S-POP").recommender,
            "SGNN-Self": jd_runner.run("SGNN-Self").recommender,
        }
        rows = run_case_study(jd_runner.dataset.test[0], systems, k=5)
        assert len(rows) == 2
        for row in rows:
            assert len(row.top_items) == 5
            assert row.target_rank >= 1

    def test_exploration_regime_kills_spop(self):
        cfg = trivago_config()
        dataset = prepare_dataset(
            generate_dataset(cfg, 700, seed=62), cfg.operations, min_support=2, name="trivago"
        )
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=16, epochs=2, seed=1))
        spop = runner.run("S-POP")
        assert spop.metrics["H@20"] < 8.0

    def test_deterministic_rerun(self):
        """Same seeds => identical metrics end-to-end."""
        cfg = jd_appliances_config()

        def run_once():
            dataset = prepare_dataset(
                generate_dataset(cfg, 300, seed=63), cfg.operations, min_support=2
            )
            runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=2, seed=3))
            return runner.run("STAMP").metrics

        assert run_once() == run_once()
