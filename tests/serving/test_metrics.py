"""Unit tests for the serving metrics registry."""

import threading

import pytest

from repro.serving import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_thread_safety(self):
        c = Counter("x")
        threads = [threading.Thread(target=lambda: [c.inc() for _ in range(1000)]) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_counts_and_sum(self):
        h = Histogram("lat", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)

    def test_percentiles_bracket_observations(self):
        h = Histogram("lat", buckets=(1, 2, 4, 8, 16))
        for _ in range(100):
            h.observe(3.0)  # everything lands in the (2, 4] bucket
        assert 2.0 <= h.percentile(0.50) <= 4.0
        assert 2.0 <= h.percentile(0.99) <= 4.0

    def test_empty_percentile_zero(self):
        assert Histogram("lat").percentile(0.5) == 0.0

    def test_summary_keys(self):
        h = Histogram("lat")
        h.observe(1.0)
        assert set(h.summary()) == {"count", "p50", "p95", "p99"}

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(10, 1))

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(1.5)


class TestRegistry:
    def test_get_or_create_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_render_text_exposition(self):
        r = MetricsRegistry()
        r.counter("requests_total", "served").inc(3)
        r.gauge("queue_depth").set(2)
        h = r.histogram("latency_ms", buckets=(1, 10))
        h.observe(0.5)
        h.observe(5)
        text = r.render_text()
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "queue_depth 2" in text
        assert 'latency_ms_bucket{le="1"} 1' in text
        assert 'latency_ms_bucket{le="+Inf"} 2' in text
        assert 'latency_ms_quantile{q="0.5"}' in text

    def test_snapshot_is_json_friendly(self):
        import json

        r = MetricsRegistry()
        r.counter("a").inc()
        r.histogram("h").observe(2.0)
        snap = r.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["a"] == 1
        assert snap["h"]["count"] == 1
