"""Deterministic tests for the micro-batching scheduler."""

import threading
import time

import pytest

from repro.serving import DeadlineExceededError, MetricsRegistry, MicroBatcher, QueueFullError


class StubService:
    """Records every top_k_batch call; ranks are the session id repeated."""

    def __init__(self, delay_s: float = 0.0):
        self.calls: list[tuple[tuple[str, ...], int, bool]] = []
        self.delay_s = delay_s

    def top_k_batch(self, session_ids, k=10, exclude_seen=False):
        if self.delay_s:
            time.sleep(self.delay_s)
        self.calls.append((tuple(session_ids), k, exclude_seen))
        return {sid: [hash(sid) % 97] * k for sid in session_ids}


class TestFlushSynchronous:
    """Drive _collect/flush by hand — no worker thread, no timing races."""

    def test_size_triggered_single_flush(self):
        stub = StubService()
        batcher = MicroBatcher(stub, max_batch_size=3, max_wait_ms=10_000)
        futures = [batcher.submit(f"s{i}", k=4) for i in range(3)]
        batch = batcher._collect()  # 3 queued >= max_batch_size: returns without waiting
        assert len(batch) == 3
        batcher.flush(batch)
        assert [f.result(0) for f in futures] == [[hash(f"s{i}") % 97] * 4 for i in range(3)]
        assert stub.calls == [(("s0", "s1", "s2"), 4, False)]

    def test_groups_by_request_shape(self):
        stub = StubService()
        batcher = MicroBatcher(stub, max_batch_size=3, max_wait_ms=10_000)
        batcher.submit("a", k=2)
        batcher.submit("b", k=2)
        batcher.submit("c", k=5, exclude_seen=True)
        batcher.flush(batcher._collect())
        assert sorted(stub.calls) == [(("a", "b"), 2, False), (("c",), 5, True)]

    def test_expired_requests_never_scored(self):
        stub = StubService()
        batcher = MicroBatcher(stub, max_batch_size=2, max_wait_ms=10_000)
        dead = batcher.submit("dead", deadline_s=-0.001)  # already expired
        live = batcher.submit("live")
        batcher.flush(batcher._collect())
        with pytest.raises(DeadlineExceededError):
            dead.result(0)
        assert live.result(0)
        assert stub.calls == [(("live",), 10, False)]

    def test_scoring_error_propagates_to_waiters(self):
        class Exploding:
            def top_k_batch(self, session_ids, k=10, exclude_seen=False):
                raise RuntimeError("model fell over")

        batcher = MicroBatcher(Exploding(), max_batch_size=2, max_wait_ms=10_000)
        future = batcher.submit("s")
        batcher.flush(batcher._collect())
        with pytest.raises(RuntimeError, match="fell over"):
            future.result(0)


class TestBackpressure:
    def test_queue_full_sheds(self):
        batcher = MicroBatcher(StubService(), max_queue_depth=2)  # worker not started
        batcher.submit("a")
        batcher.submit("b")
        with pytest.raises(QueueFullError):
            batcher.submit("c")


class TestThreaded:
    """The real worker thread: size and timeout triggers end to end."""

    def test_size_triggered_flush(self):
        stub = StubService()
        batcher = MicroBatcher(stub, max_batch_size=4, max_wait_ms=60_000).start()
        try:
            futures = [batcher.submit(f"s{i}") for i in range(4)]
            results = [f.result(timeout=5.0) for f in futures]
            assert all(len(r) == 10 for r in results)
            # One flush of exactly max_batch_size despite the 60s window.
            assert len(stub.calls) == 1
            assert len(stub.calls[0][0]) == 4
        finally:
            batcher.stop()

    def test_timeout_triggered_flush(self):
        stub = StubService()
        batcher = MicroBatcher(stub, max_batch_size=100, max_wait_ms=30).start()
        try:
            future = batcher.submit("lonely")
            assert future.result(timeout=5.0)  # resolves long before 100 requests arrive
            assert len(stub.calls) == 1
        finally:
            batcher.stop()

    def test_concurrent_submitters_coalesce(self):
        stub = StubService(delay_s=0.01)
        batcher = MicroBatcher(stub, max_batch_size=8, max_wait_ms=20).start()
        try:
            results = {}

            def one(i):
                results[i] = batcher.submit(f"s{i}").result(timeout=5.0)

            threads = [threading.Thread(target=one, args=(i,)) for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 16
            scored = sum(len(call[0]) for call in stub.calls)
            assert scored == 16
            assert len(stub.calls) < 16  # coalescing actually happened
        finally:
            batcher.stop()

    def test_metrics_reported(self):
        registry = MetricsRegistry()
        batcher = MicroBatcher(StubService(), max_batch_size=2, max_wait_ms=10_000, registry=registry)
        batcher.submit("a")
        batcher.submit("b")
        batcher.flush(batcher._collect())
        snap = registry.snapshot()
        assert snap["batcher_flushes_total"] == 1
        assert snap["batcher_requests_total"] == 2
        assert snap["batcher_batch_size"]["count"] == 1
