"""Tests for load shedding, deadlines, and the popularity fallback."""

import pytest

from repro.data.preprocess import ItemVocab, PreparedDataset
from repro.data.schema import MacroSession, OperationVocab
from repro.serving import (
    AdmissionController,
    DeadlineExceededError,
    MetricsRegistry,
    MicroBatcher,
    PopularityFallback,
    QueueFullError,
)


@pytest.fixture
def tiny_dataset():
    vocab = ItemVocab([101, 102, 103])  # dense: 101->1, 102->2, 103->3
    train = [
        MacroSession([1, 2], [[0], [0]], target=2),
        MacroSession([2], [[0]], target=2),
        MacroSession([3], [[0]], target=1),
    ]
    return PreparedDataset("tiny", train, [], [], vocab, OperationVocab(["click"]))


class FastService:
    def top_k_batch(self, session_ids, k=10, exclude_seen=False):
        return {sid: list(range(k)) for sid in session_ids}


class TestPopularityFallback:
    def test_ranking_by_train_popularity(self, tiny_dataset):
        fallback = PopularityFallback(tiny_dataset)
        # item 102 counted 4x, 101 2x, 103 1x (macro occurrences + targets)
        assert fallback.top_k(3) == [102, 101, 103]

    def test_exclusion_and_truncation(self, tiny_dataset):
        fallback = PopularityFallback(tiny_dataset)
        assert fallback.top_k(2, exclude_raw=(102,)) == [101, 103]
        assert fallback.top_k(99) == [102, 101, 103]


class TestAdmission:
    def test_happy_path_uses_model(self):
        batcher = MicroBatcher(FastService(), max_batch_size=1).start()
        try:
            admission = AdmissionController(batcher, deadline_ms=2000)
            rec = admission.recommend("s", k=3)
            assert rec.source == "model"
            assert rec.items == [0, 1, 2]
        finally:
            batcher.stop()

    def test_queue_full_sheds_with_429_semantics(self):
        registry = MetricsRegistry()
        batcher = MicroBatcher(FastService(), max_queue_depth=1)  # worker not running
        batcher.submit("hog")  # fills the queue
        admission = AdmissionController(batcher, registry=registry)
        with pytest.raises(QueueFullError):
            admission.recommend("s")
        assert registry.snapshot()["requests_shed_total"] == 1

    def test_deadline_miss_serves_fallback(self, tiny_dataset):
        registry = MetricsRegistry()
        batcher = MicroBatcher(FastService(), max_queue_depth=8)  # never scores
        admission = AdmissionController(
            batcher,
            deadline_ms=10,
            fallback=PopularityFallback(tiny_dataset),
            registry=registry,
        )
        rec = admission.recommend("s", k=2)
        assert rec.source == "fallback"
        assert rec.items == [102, 101]
        assert registry.snapshot()["requests_fallback_total"] == 1

    def test_fallback_respects_exclude_seen(self, tiny_dataset):
        batcher = MicroBatcher(FastService(), max_queue_depth=8)
        admission = AdmissionController(
            batcher, deadline_ms=10, fallback=PopularityFallback(tiny_dataset)
        )
        rec = admission.recommend("s", k=2, exclude_seen=True, exclude_raw=(102,))
        assert rec.items == [101, 103]

    def test_deadline_miss_without_fallback_raises(self):
        batcher = MicroBatcher(FastService(), max_queue_depth=8)
        admission = AdmissionController(batcher, deadline_ms=10, fallback=None)
        with pytest.raises(DeadlineExceededError):
            admission.recommend("s")
