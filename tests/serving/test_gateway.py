"""Gateway tests: in-process request path plus threaded HTTP end-to-end."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import Recommender
from repro.serve import RecommenderService
from repro.serving import (
    GatewayConfig,
    PopularityFallback,
    QueueFullError,
    ServingGateway,
    run_load,
)


class EchoLast(Recommender):
    """Deterministic: rank the last macro item first, its successor second."""

    name = "echo"

    def __init__(self, num_items):
        self.num_items = num_items

    def fit(self, dataset):
        return self

    def score_batch(self, batch) -> np.ndarray:
        scores = np.zeros((batch.batch_size, self.num_items))
        lengths = batch.macro_lengths()
        for b in range(batch.batch_size):
            last = batch.items[b, lengths[b] - 1]
            scores[b, last - 1] = 2.0
            scores[b, last % self.num_items] = 1.0
        return scores


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=3), cfg.operations, min_support=2, name="jd"
    )


def make_gateway(dataset, **config_kwargs) -> ServingGateway:
    service = RecommenderService(
        EchoLast(dataset.num_items), dataset.vocab, num_ops=dataset.num_operations
    )
    return ServingGateway(
        service,
        GatewayConfig(max_wait_ms=2.0, **config_kwargs),
        fallback=PopularityFallback(dataset),
    )


def raw_item(dataset, dense):
    return dataset.vocab.decode(dense)


class TestInProcessPath:
    """The full request pipeline without sockets — deterministic and fast."""

    def test_ingest_then_recommend(self, dataset):
        gateway = make_gateway(dataset)
        gateway.batcher.start()
        try:
            out = gateway.ingest("u", raw_item(dataset, 5), 0)
            assert out == {"applied": True, "session_steps": 1}
            result = gateway.recommend("u", k=3)
            assert result["source"] == "model"
            assert result["items"][0] == raw_item(dataset, 5)
        finally:
            gateway.batcher.stop()

    def test_cache_hit_and_invalidate_on_event(self, dataset):
        gateway = make_gateway(dataset)
        gateway.batcher.start()
        try:
            gateway.ingest("u", raw_item(dataset, 5), 0)
            first = gateway.recommend("u", k=3)
            second = gateway.recommend("u", k=3)
            assert not first["cached"] and second["cached"]
            assert second["items"] == first["items"]
            # A new event must invalidate: next answer is freshly scored.
            gateway.ingest("u", raw_item(dataset, 6), 0)
            third = gateway.recommend("u", k=3)
            assert not third["cached"]
            assert third["items"][0] == raw_item(dataset, 6)
        finally:
            gateway.batcher.stop()

    def test_cold_start_serves_popularity(self, dataset):
        gateway = make_gateway(dataset)
        result = gateway.recommend("never-seen", k=5)
        assert result["source"] == "cold_start"
        assert result["items"] == gateway.admission.fallback.top_k(5)

    def test_unknown_item_does_not_create_session(self, dataset):
        gateway = make_gateway(dataset)
        out = gateway.ingest("u", 10**9, 0)
        assert out == {"applied": False, "session_steps": 0}
        assert gateway.service.active_sessions == 0

    def test_queue_full_sheds(self, dataset):
        gateway = make_gateway(dataset, max_queue_depth=1)  # batcher NOT started
        gateway.ingest("u", raw_item(dataset, 5), 0)
        gateway.batcher.submit("hog")  # occupies the only queue slot
        with pytest.raises(QueueFullError):
            gateway.recommend("u")
        assert gateway.registry.snapshot()["requests_shed_total"] == 1

    def test_deadline_miss_degrades_to_popularity(self, dataset):
        gateway = make_gateway(dataset, deadline_ms=15)  # batcher NOT started
        gateway.ingest("u", raw_item(dataset, 5), 0)
        result = gateway.recommend("u", k=4)
        assert result["source"] == "fallback"
        assert result["items"] == gateway.admission.fallback.top_k(4)
        assert gateway.registry.snapshot()["requests_fallback_total"] == 1

    def test_end_session(self, dataset):
        gateway = make_gateway(dataset)
        gateway.ingest("u", raw_item(dataset, 5), 0)
        gateway.end_session("u")
        assert gateway.service.active_sessions == 0


def http_json(url, payload=None):
    if payload is not None:
        req = urllib.request.Request(
            url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
        )
    else:
        req = url
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


@pytest.mark.slow
class TestHTTPEndToEnd:
    """Real sockets, real threads, ephemeral port."""

    @pytest.fixture
    def gateway(self, dataset):
        with make_gateway(dataset) as gw:
            yield gw

    def test_healthz(self, gateway):
        status, body = http_json(f"{gateway.address}/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_event_recommend_cycle(self, gateway, dataset):
        status, body = http_json(
            f"{gateway.address}/events",
            {"session_id": "u", "item": raw_item(dataset, 5), "operation": 0},
        )
        assert status == 200 and body["applied"]
        status, body = http_json(f"{gateway.address}/recommend?session_id=u&k=3")
        assert status == 200
        assert body["items"][0] == raw_item(dataset, 5)
        status, body = http_json(f"{gateway.address}/recommend?session_id=u&k=3")
        assert body["cached"] is True

    def test_bad_requests(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as err:
            http_json(f"{gateway.address}/recommend")  # no session_id
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            http_json(f"{gateway.address}/nope")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            http_json(f"{gateway.address}/events", {"session_id": "u"})  # missing fields
        assert err.value.code == 400

    def test_load_generator_end_to_end(self, gateway, dataset):
        items = [raw_item(dataset, d) for d in range(1, min(30, dataset.num_items) + 1)]
        report = run_load(
            gateway.config.host,
            gateway.port,
            items,
            num_ops=dataset.num_operations,
            workers=8,
            requests_per_worker=12,
            event_every=3,
        )
        assert report.errors == 0
        assert report.requests == 8 * 12
        assert set(report.status_counts) == {200}
        assert report.percentile(0.5) > 0

        # /metrics must expose the acceptance-criteria quartet after a run.
        with urllib.request.urlopen(f"{gateway.address}/metrics", timeout=10) as resp:
            text = resp.read().decode()
        assert "requests_recommend_total" in text
        assert "cache_hit_rate" in text
        assert "requests_shed_total" in text
        assert "request_latency_ms_quantile" in text
        snap = gateway.registry.snapshot()
        assert snap["requests_recommend_total"] == 8 * 12
        assert snap["request_latency_ms"]["count"] == 8 * 12
        assert snap["cache_hits_total"] + snap["cache_misses_total"] > 0
