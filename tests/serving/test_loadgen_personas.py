"""Load-generator personas: rotation, stickiness, and back-compat.

Runs against a stub HTTP server (no model, no gateway) so the traffic
shape itself — which session ids hit the wire, and when — is asserted
exactly.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import pytest

from repro.serving import SessionPersona, run_load
from repro.serving.loadgen import DEFAULT_PERSONAS


class _StubServer:
    """Answers the loadgen protocol and records every session id seen."""

    def __init__(self):
        self.lock = threading.Lock()
        self.recommend_sessions: list[str] = []
        self.event_sessions: list[str] = []
        stub = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def _json(self, payload):
                body = json.dumps(payload).encode()
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                url = urlparse(self.path)
                sid = parse_qs(url.query)["session_id"][0]
                with stub.lock:
                    stub.recommend_sessions.append(sid)
                self._json({"items": [], "source": "stub", "cached": False})

            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length))
                with stub.lock:
                    stub.event_sessions.append(payload["session_id"])
                self._json({"applied": True})

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=self.server.serve_forever, daemon=True).start()

    @property
    def port(self):
        return self.server.server_address[1]

    def close(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture()
def stub():
    server = _StubServer()
    yield server
    server.close()


def load(stub, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("requests_per_worker", 12)
    return run_load("127.0.0.1", stub.port, items=[1, 2, 3], num_ops=4, **kwargs)


class TestPersonaValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            SessionPersona(event_every=0)
        with pytest.raises(ValueError):
            SessionPersona(session_lifetime=-1)

    def test_event_every_and_personas_are_exclusive(self, stub):
        with pytest.raises(ValueError):
            load(stub, event_every=3, personas=(SessionPersona(),))


class TestTrafficShape:
    def test_long_lived_persona_never_rotates(self, stub):
        report = load(
            stub,
            workers=2,
            requests_per_worker=30,
            personas=(SessionPersona(name="pinned", event_every=3, session_lifetime=0),),
        )
        assert report.errors == 0
        assert set(stub.recommend_sessions) == {"load-pinned-0", "load-pinned-1"}

    def test_short_lived_persona_rotates_on_schedule(self, stub):
        load(
            stub,
            workers=1,
            requests_per_worker=25,
            personas=(SessionPersona(name="visitor", event_every=5, session_lifetime=10),),
        )
        # 25 requests, rotation at i=10 and i=20 → three incarnations.
        assert set(stub.recommend_sessions) == {
            "load-visitor-0",
            "load-visitor-0-1",
            "load-visitor-0-2",
        }

    def test_workers_take_personas_round_robin(self, stub):
        load(stub, workers=4, requests_per_worker=4)  # DEFAULT_PERSONAS mix
        names = {s.split("-")[1] for s in stub.recommend_sessions}
        assert names == {p.name for p in DEFAULT_PERSONAS}

    def test_event_every_keeps_single_burst_persona(self, stub):
        report = load(stub, workers=1, requests_per_worker=10, event_every=5)
        assert report.requests == 10
        assert set(stub.recommend_sessions) == {"load-burst-0"}
        assert len(stub.event_sessions) == 2  # i = 0 and i = 5

    def test_default_mix_includes_a_survivor_session(self, stub):
        """The default mix keeps at least one session alive end to end —
        the traffic hot-swap benchmarks rely on to observe stickiness."""
        load(stub, workers=2, requests_per_worker=30)
        longlived = [s for s in stub.recommend_sessions if "longlived" in s]
        assert len(set(longlived)) == 1
        assert len(longlived) == 30
