"""Unit tests for the generation-aware TTL score cache."""

from repro.serving import ScoreCache

FP_A = ((1, 2), ((0,), (1, 1)))
FP_B = ((1, 2, 3), ((0,), (1, 1), (0,)))


def make_cache(**kwargs):
    clock = {"t": 0.0}
    cache = ScoreCache(clock=lambda: clock["t"], **kwargs)
    return cache, clock


class TestHitMiss:
    def test_roundtrip_hit(self):
        cache, _ = make_cache()
        cache.put("s", FP_A, 5, [10, 20, 30])
        assert cache.get("s", FP_A, 5) == [10, 20, 30]
        assert cache.hits == 1

    def test_fingerprint_mismatch_misses(self):
        cache, _ = make_cache()
        cache.put("s", FP_A, 5, [10])
        assert cache.get("s", FP_B, 5) is None

    def test_request_shape_is_part_of_key(self):
        cache, _ = make_cache()
        cache.put("s", FP_A, 5, [10])
        assert cache.get("s", FP_A, 10) is None
        assert cache.get("s", FP_A, 5, exclude_seen=True) is None

    def test_returns_copy(self):
        cache, _ = make_cache()
        cache.put("s", FP_A, 5, [10, 20])
        cache.get("s", FP_A, 5).append(99)
        assert cache.get("s", FP_A, 5) == [10, 20]


class TestInvalidation:
    def test_invalidate_on_event_kills_entry(self):
        cache, _ = make_cache()
        cache.put("s", FP_A, 5, [10])
        cache.invalidate("s")  # the session ingested a new event
        assert cache.get("s", FP_A, 5) is None

    def test_invalidate_is_per_session(self):
        cache, _ = make_cache()
        cache.put("a", FP_A, 5, [1])
        cache.put("b", FP_A, 5, [2])
        cache.invalidate("a")
        assert cache.get("a", FP_A, 5) is None
        assert cache.get("b", FP_A, 5) == [2]

    def test_put_after_invalidate_is_fresh(self):
        cache, _ = make_cache()
        cache.put("s", FP_A, 5, [1])
        cache.invalidate("s")
        cache.put("s", FP_B, 5, [2])
        assert cache.get("s", FP_B, 5) == [2]

    def test_forget_drops_generation_tracking(self):
        cache, _ = make_cache()
        cache.invalidate("s")
        cache.forget("s")
        assert cache.generation("s") == 0


class TestTTLAndLRU:
    def test_ttl_expiry(self):
        cache, clock = make_cache(ttl=10.0)
        cache.put("s", FP_A, 5, [1])
        clock["t"] = 9.0
        assert cache.get("s", FP_A, 5) == [1]
        clock["t"] = 11.0
        assert cache.get("s", FP_A, 5) is None

    def test_lru_eviction_order(self):
        cache, _ = make_cache(max_entries=2)
        cache.put("a", FP_A, 5, [1])
        cache.put("b", FP_A, 5, [2])
        cache.get("a", FP_A, 5)  # refresh "a"
        cache.put("c", FP_A, 5, [3])  # evicts "b", the least recently used
        assert cache.get("a", FP_A, 5) == [1]
        assert cache.get("b", FP_A, 5) is None
        assert cache.get("c", FP_A, 5) == [3]
        assert len(cache) == 2

    def test_hit_rate(self):
        cache, _ = make_cache()
        assert cache.hit_rate == 0.0
        cache.put("s", FP_A, 5, [1])
        cache.get("s", FP_A, 5)
        cache.get("s", FP_B, 5)
        assert cache.hit_rate == 0.5
