"""Tests for the online serving layer."""

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import SessionBatch
from repro.eval import Recommender
from repro.serve import RecommenderService


class EchoLast(Recommender):
    """Scores proportional to the last macro item id (deterministic)."""

    name = "echo"

    def __init__(self, num_items):
        self.num_items = num_items

    def fit(self, dataset):
        return self

    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        scores = np.zeros((batch.batch_size, self.num_items))
        lengths = batch.macro_lengths()
        for b in range(batch.batch_size):
            last = batch.items[b, lengths[b] - 1]
            scores[b, last - 1] = 2.0  # rank the last item first...
            scores[b, last % self.num_items] = 1.0  # ...then its successor
        return scores


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=3), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture
def service(dataset):
    clock = {"t": 0.0}
    svc = RecommenderService(
        EchoLast(dataset.num_items),
        dataset.vocab,
        num_ops=dataset.num_operations,
        session_ttl=100.0,
        clock=lambda: clock["t"],
    )
    svc._test_clock = clock
    return svc


def raw_item(dataset, dense):
    return dataset.vocab.decode(dense)


class TestRecording:
    def test_merge_successive_semantics(self, service, dataset):
        item = raw_item(dataset, 1)
        service.record("u", item, 0)
        service.record("u", item, 1)
        session = service.session("u")
        assert session.num_macro_steps == 1
        assert session.op_sequences[0] == [0, 1]

    def test_revisit_new_step(self, service, dataset):
        a, b = raw_item(dataset, 1), raw_item(dataset, 2)
        for it in (a, b, a):
            service.record("u", it, 0)
        assert service.session("u").num_macro_steps == 3

    def test_unknown_item_never_creates_session(self, service):
        """A visitor whose first event is out-of-vocab must not grow the table."""
        applied = service.record("u", item=10**9, operation=0)
        assert not applied
        assert service.session("u") is None
        assert service.active_sessions == 0
        assert service.vocab_misses == 1

    def test_unknown_item_counted_on_existing_session(self, service, dataset):
        service.record("u", raw_item(dataset, 1), 0)
        applied = service.record("u", item=10**9, operation=0)
        assert not applied
        assert service.session("u").dropped_events == 1
        assert service.vocab_misses == 0

    def test_invalid_operation_rejected(self, service, dataset):
        with pytest.raises(ValueError):
            service.record("u", raw_item(dataset, 1), operation=99)


class TestTopK:
    def test_ranking_follows_recommender(self, service, dataset):
        service.record("u", raw_item(dataset, 5), 0)
        top = service.top_k("u", k=2)
        assert top[0] == raw_item(dataset, 5)

    def test_exclude_seen(self, service, dataset):
        service.record("u", raw_item(dataset, 5), 0)
        top = service.top_k("u", k=3, exclude_seen=True)
        assert raw_item(dataset, 5) not in top

    def test_unknown_session_empty(self, service):
        assert service.top_k("ghost", k=5) == []

    def test_batch_scoring_mixed(self, service, dataset):
        service.record("a", raw_item(dataset, 3), 0)
        out = service.top_k_batch(["a", "ghost"], k=2)
        assert out["ghost"] == []
        assert len(out["a"]) == 2

    def test_returns_raw_ids(self, service, dataset):
        service.record("u", raw_item(dataset, 7), 0)
        for rid in service.top_k("u", k=5):
            assert rid in dataset.vocab

    def test_exclude_seen_masks_only_scored_window(self, dataset):
        """Regression: sessions longer than max_macro_len must not mask
        items that already scrolled out of the scored window."""
        svc = RecommenderService(
            EchoLast(dataset.num_items), dataset.vocab,
            num_ops=dataset.num_operations, max_macro_len=3,
        )
        for dense in (1, 2, 3, 4, 5):
            svc.record("u", raw_item(dataset, dense), 0)
        top = svc.top_k("u", k=3, exclude_seen=True)
        # Window is [3, 4, 5]; those must be excluded...
        for dense in (3, 4, 5):
            assert raw_item(dataset, dense) not in top
        # ...but 1 and 2 fell out of the window and are recommendable again.
        # EchoLast gives every unmasked zero-scored item a stable-order rank,
        # so dense ids 1 and 2 follow the single positively scored item.
        assert top[1] == raw_item(dataset, 1)
        assert top[2] == raw_item(dataset, 2)


class TestWindowFingerprint:
    def test_window_matches_to_example(self, service, dataset):
        for dense in (1, 2, 2, 3):
            service.record("u", raw_item(dataset, dense), 0)
        session = service.session("u")
        items, ops = session.window(2)
        example = session.to_example(2)
        assert list(items) == example.macro_items
        assert [list(o) for o in ops] == example.op_sequences

    def test_fingerprint_changes_with_events(self, service, dataset):
        service.record("u", raw_item(dataset, 1), 0)
        before = service.session("u").fingerprint(20)
        service.record("u", raw_item(dataset, 1), 1)  # merged op still changes state
        after = service.session("u").fingerprint(20)
        assert before != after

    def test_fingerprint_is_hashable_and_stable(self, service, dataset):
        service.record("u", raw_item(dataset, 1), 0)
        assert hash(service.session("u").fingerprint(20)) == hash(
            service.session("u").fingerprint(20)
        )


class TestLifecycle:
    def test_ttl_eviction(self, service, dataset):
        service.record("old", raw_item(dataset, 1), 0)
        service._test_clock["t"] = 50.0
        service.record("fresh", raw_item(dataset, 2), 0)
        service._test_clock["t"] = 140.0  # old idle 140 > ttl; fresh idle 90 < ttl
        evicted = service.sweep_expired()
        assert evicted == 1
        assert service.session("old") is None
        assert service.session("fresh") is not None

    def test_end_session(self, service, dataset):
        service.record("u", raw_item(dataset, 1), 0)
        service.end_session("u")
        assert service.active_sessions == 0

    def test_truncation_to_max_macro_len(self, dataset):
        svc = RecommenderService(
            EchoLast(dataset.num_items), dataset.vocab,
            num_ops=dataset.num_operations, max_macro_len=3,
        )
        for dense in (1, 2, 3, 4, 5):
            svc.record("u", raw_item(dataset, dense), 0)
        example = svc.session("u").to_example(3)
        assert len(example) == 3
        assert example.macro_items == [3, 4, 5]


class TestWithRealModel:
    def test_neural_model_end_to_end(self, dataset):
        from repro.eval import ExperimentConfig, ExperimentRunner

        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=1, seed=0))
        rec = runner.run("STAMP").recommender
        svc = RecommenderService(rec, dataset.vocab, num_ops=dataset.num_operations)
        svc.record("u", dataset.vocab.decode(1), 0)
        svc.record("u", dataset.vocab.decode(2), 1)
        top = svc.top_k("u", k=10)
        assert len(top) == 10
        assert len(set(top)) == 10
