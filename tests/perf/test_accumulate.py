"""Gradient-accumulation discipline: in-place `+=` without aliasing bugs.

`Tensor._accumulate` borrows the FIRST gradient contribution by reference
(avoiding a copy) and only allocates an owned buffer when a second
contribution arrives. These tests pin down the aliasing hazards that
discipline must not introduce: backward closures hand the SAME array to
several parents, and retained graphs replay closures over the same seed.
"""

import numpy as np

from repro.autograd import Tensor


def test_first_contribution_is_borrowed_then_copied_on_second():
    t = Tensor(np.zeros(3), requires_grad=True)
    first = np.ones(3)
    t._accumulate(first)
    assert t.grad is first and not t._grad_owned  # borrowed, no copy yet
    t._accumulate(np.full(3, 2.0))
    assert t.grad is not first and t._grad_owned  # copy-on-second-write
    np.testing.assert_allclose(first, np.ones(3))  # donor untouched
    np.testing.assert_allclose(t.grad, np.full(3, 3.0))
    t._accumulate(np.ones(3))  # third contribution is in-place
    owned = t.grad
    t._accumulate(np.ones(3))
    assert t.grad is owned
    np.testing.assert_allclose(t.grad, np.full(3, 5.0))


def test_shared_upstream_grad_not_corrupted_between_siblings():
    """`c = a + b` hands ONE array to both parents; accumulating further
    gradient into `a` must not leak into `b`."""
    a = Tensor(np.zeros(2), requires_grad=True)
    b = Tensor(np.zeros(2), requires_grad=True)
    loss = (a + b).sum() + a.sum()  # a receives two contributions, b one
    loss.backward()
    np.testing.assert_allclose(a.grad, np.full(2, 2.0))
    np.testing.assert_allclose(b.grad, np.ones(2))


def test_diamond_graph_accumulates_exactly_once_per_path():
    x = Tensor(np.array([1.5, -0.5]), requires_grad=True)
    y = x * 2.0
    z = x * 3.0
    (y + z).sum().backward()
    np.testing.assert_allclose(x.grad, np.full(2, 5.0))


def test_retained_graph_repeated_backward_is_stable():
    """Repeated backward over a retained graph must give identical leaf
    grads per pass — interior borrowed/owned buffers must not be reused
    across passes (the aliasing regression this PR fixes)."""
    x = Tensor(np.array([0.3, -1.2, 2.0]), requires_grad=True)
    w = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    h = x * w
    loss = (h + h.tanh()).sum()
    loss.backward(retain_graph=True)
    first_x, first_w = x.grad.copy(), w.grad.copy()
    loss.backward(retain_graph=True)
    np.testing.assert_allclose(x.grad, 2.0 * first_x)
    np.testing.assert_allclose(w.grad, 2.0 * first_w)
    x.zero_grad()
    w.zero_grad()
    loss.backward()
    np.testing.assert_allclose(x.grad, first_x)
    np.testing.assert_allclose(w.grad, first_w)


def test_leaf_grad_mutation_does_not_corrupt_interior_data():
    """Optimizer-style in-place updates on `p.grad` after backward must not
    alias any tensor's forward data."""
    p = Tensor(np.ones(4), requires_grad=True)
    out = p * 1.0
    out.sum().backward()
    p.grad *= 100.0
    np.testing.assert_allclose(p.data, np.ones(4))
    np.testing.assert_allclose(out.data, np.ones(4))


def test_zero_grad_resets_ownership():
    t = Tensor(np.zeros(2), requires_grad=True)
    donor = np.ones(2)
    t._accumulate(donor)
    t.zero_grad()
    assert t.grad is None and not t._grad_owned
    t._accumulate(np.full(2, 7.0))
    t._accumulate(np.full(2, 1.0))
    np.testing.assert_allclose(donor, np.ones(2))  # old donor never touched
    np.testing.assert_allclose(t.grad, np.full(2, 8.0))
