"""OpProfiler behavior: hooks, counters, the no-grad zero-allocation contract."""

import json

import numpy as np
import pytest

from repro import nn, perf
from repro.autograd import Tensor, no_grad
from repro.perf.profiler import active_profiler


def _tiny_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng),
        nn.Linear(8, 3, rng=rng),
    )


def test_profiler_counts_backward_nodes_and_ops():
    model = _tiny_model()
    x = Tensor(np.random.default_rng(1).normal(size=(5, 4)))
    with perf.OpProfiler() as prof:
        loss = model(x).sum()
        loss.backward()
    assert prof.backward_nodes > 0
    # Two fused Linear layers -> two addmm nodes, plus the final sum.
    assert prof.node_counts["addmm"] == 2
    assert prof.node_counts["sum"] == 1
    # Every allocated node's closure ran exactly once during backward.
    for name, count in prof.node_counts.items():
        assert prof.backward_stats[name][0] == count


def test_profiler_records_module_self_and_cumulative_time():
    model = _tiny_model()
    x = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
    with perf.OpProfiler() as prof:
        model(x)
    seq = prof.module_stats["Sequential"]
    lin = prof.module_stats["Linear"]
    assert seq[0] == 1 and lin[0] == 2
    # Sequential's cumulative time includes its children; its self time does not.
    assert seq[1] >= seq[2] >= 0.0
    assert lin[1] >= lin[2] >= 0.0


def test_inference_under_no_grad_allocates_zero_backward_nodes():
    """The satellite contract: no_grad inference builds NO graph at all."""
    rng = np.random.default_rng(3)
    model = nn.Sequential(
        nn.Embedding(10, 6, rng=rng),
        nn.Linear(6, 4, rng=rng),
    )
    model.eval()
    indices = np.array([[1, 2, 3]])
    for fused in (True, False):
        with perf.fusion(fused), perf.OpProfiler() as prof:
            with no_grad():
                out = model(indices)
                (out * out).sum()
        assert prof.backward_nodes == 0, f"graph built under no_grad (fused={fused})"
        assert out._backward is None and out._parents == ()


def test_profiler_enable_disable_restores_previous():
    assert active_profiler() is None
    outer = perf.OpProfiler()
    inner = perf.OpProfiler()
    with outer:
        assert active_profiler() is outer
        with inner:
            assert active_profiler() is inner
        assert active_profiler() is outer
    assert active_profiler() is None


def test_profiler_reset_and_json_roundtrip(tmp_path):
    model = _tiny_model()
    x = Tensor(np.ones((2, 4)))
    with perf.OpProfiler() as prof:
        model(x).sum().backward()
    table = prof.table()
    assert "addmm" in table and "Linear" in table
    path = prof.dump_json(tmp_path / "profile.json")
    payload = json.loads(path.read_text())
    assert payload["backward_nodes"] == prof.backward_nodes
    assert payload["node_counts"]["addmm"] == 2
    assert payload["modules"]["Linear"]["calls"] == 2
    prof.reset()
    assert prof.backward_nodes == 0 and not prof.node_counts
    assert prof.table() == "(no profiled activity)"


def test_backward_time_attributed_to_fused_ops():
    rng = np.random.default_rng(4)
    gru = nn.GRU(3, 4, rng=rng)
    x = Tensor(rng.normal(size=(2, 5, 3)))
    with perf.OpProfiler() as prof:
        outs, _ = gru(x, mask=np.ones((2, 5)))
        outs.sum().backward()
    # The whole unroll is ONE node under fusion.
    assert prof.node_counts["gru_sequence"] == 1
    calls, seconds = prof.backward_stats["gru_sequence"]
    assert calls == 1 and seconds >= 0.0


def test_dump_trace_writes_chrome_tracing_json(tmp_path):
    """dump_trace emits a chrome://tracing file with forward and backward
    tracks, nested complete events, and microsecond timestamps."""
    model = _tiny_model()
    x = Tensor(np.random.default_rng(5).normal(size=(3, 4)))
    with perf.OpProfiler() as prof:
        model(x).sum().backward()
    path = prof.dump_trace(tmp_path / "trace.json")
    payload = json.loads(path.read_text())

    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} == {"forward", "backward"}
    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "no timeline events recorded"
    for event in complete:
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert event["cat"] in ("forward", "backward")
    names = {e["name"] for e in complete}
    # Module forward calls and backward op closures both appear.
    assert "Linear" in names and "addmm" in names
    # Forward and backward land on their own tracks.
    tid_by_cat = {e["cat"]: e["tid"] for e in complete}
    assert tid_by_cat["forward"] != tid_by_cat["backward"]


def test_dump_trace_respects_reset(tmp_path):
    model = _tiny_model()
    x = Tensor(np.ones((2, 4)))
    with perf.OpProfiler() as prof:
        model(x).sum().backward()
        prof.reset()
        model(x)  # forward only after the reset
    payload = json.loads(prof.dump_trace(tmp_path / "trace.json").read_text())
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert complete and all(e["cat"] == "forward" for e in complete)


def test_profile_cli_smoke(tmp_path, capsys):
    """`repro profile` prints the table and writes JSON."""
    pytest.importorskip("repro.cli")
    from repro.cli import main
    from repro.data import (
        generate_dataset,
        jd_appliances_config,
        prepare_dataset,
        save_prepared_dataset,
    )

    cfg = jd_appliances_config()
    sessions = generate_dataset(cfg, 120, seed=0)
    dataset = prepare_dataset(sessions, cfg.operations, name="t", min_support=2, seed=0)
    dataset_path = tmp_path / "d.json"
    save_prepared_dataset(dataset, dataset_path)
    json_path = tmp_path / "prof.json"
    code = main(
        [
            "profile",
            "--dataset", str(dataset_path),
            "--model", "NARM",
            "--dim", "8",
            "--steps", "2",
            "--json", str(json_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "steps/s" in out and "backward ops" in out
    assert json.loads(json_path.read_text())["backward_nodes"] > 0
