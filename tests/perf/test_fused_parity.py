"""Parity + gradcheck suite for every fused kernel (the fusion contract).

Each kernel must agree with the unfused composition it replaces — forward
values AND gradients — in float32 and float64, batched and length-1, and
must independently pass central finite differences (float64 only; float32
rounding drowns the difference quotient).
"""

import numpy as np
import pytest

from repro import nn, perf
from repro.autograd import Tensor, check_gradients, default_dtype

DTYPES = [np.float32, np.float64]
TOL = {np.float32: dict(rtol=1e-4, atol=1e-5), np.float64: dict(rtol=1e-10, atol=1e-12)}


def _t(rng, shape, dtype, scale=0.5):
    return Tensor(rng.normal(size=shape).astype(dtype) * dtype(scale), requires_grad=True)


def _grads(tensors):
    return [None if t.grad is None else np.array(t.grad, copy=True) for t in tensors]


def _assert_grads_match(fused_out, unfused_out, tensors, dtype):
    """Backprop both graphs from the same seed and compare every gradient."""
    tol = TOL[dtype]
    np.testing.assert_allclose(fused_out.data, unfused_out.data, **tol)
    fused_out.sum().backward()
    fused_grads = _grads(tensors)
    for t in tensors:
        t.zero_grad()
    unfused_out.sum().backward()
    for fused_grad, t in zip(fused_grads, tensors):
        np.testing.assert_allclose(fused_grad, t.grad, **tol)


# ----------------------------------------------------------------------
# addmm
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("batch", [1, 5])
def test_addmm_matches_unfused(dtype, batch):
    rng = np.random.default_rng(0)
    x, w, b = _t(rng, (batch, 3), dtype), _t(rng, (3, 4), dtype), _t(rng, (4,), dtype)
    _assert_grads_match(perf.addmm(x, w, b), x.matmul(w) + b, [x, w, b], dtype)


def test_addmm_no_bias_and_3d_input():
    rng = np.random.default_rng(1)
    x, w = _t(rng, (2, 3, 4), np.float64), _t(rng, (4, 5), np.float64)
    _assert_grads_match(perf.addmm(x, w, None), x.matmul(w), [x, w], np.float64)


def test_addmm_gradcheck():
    rng = np.random.default_rng(2)
    inputs = [_t(rng, (2, 3), np.float64), _t(rng, (3, 4), np.float64), _t(rng, (4,), np.float64)]
    check_gradients(lambda x, w, b: perf.addmm(x, w, b), inputs)


# ----------------------------------------------------------------------
# GRU cell / sequence
# ----------------------------------------------------------------------
def _gru_params(rng, input_dim, hidden_dim, dtype):
    return (
        _t(rng, (input_dim, 3 * hidden_dim), dtype),
        _t(rng, (hidden_dim, 3 * hidden_dim), dtype),
        _t(rng, (3 * hidden_dim,), dtype),
        _t(rng, (3 * hidden_dim,), dtype),
    )


def _unfused_cell(x, h, w_ih, w_hh, b_ih, b_hh):
    d = h.shape[-1]
    gi = x @ w_ih + b_ih
    gh = h @ w_hh + b_hh
    z = (gi[:, :d] + gh[:, :d]).sigmoid()
    r = (gi[:, d : 2 * d] + gh[:, d : 2 * d]).sigmoid()
    n = (gi[:, 2 * d :] + r * gh[:, 2 * d :]).tanh()
    return (1.0 - z) * n + z * h


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("batch", [1, 4])
def test_gru_cell_matches_unfused(dtype, batch):
    rng = np.random.default_rng(3)
    x, h = _t(rng, (batch, 3), dtype), _t(rng, (batch, 5), dtype)
    params = _gru_params(rng, 3, 5, dtype)
    fused = perf.gru_cell(x, h, *params)
    unfused = _unfused_cell(x, h, *params)
    _assert_grads_match(fused, unfused, [x, h, *params], dtype)


@pytest.mark.parametrize("masked", [False, True])
def test_gru_cell_gradcheck(masked):
    rng = np.random.default_rng(4)
    x, h = _t(rng, (3, 4), np.float64), _t(rng, (3, 5), np.float64)
    params = _gru_params(rng, 4, 5, np.float64)
    mask_col = np.array([[1.0], [0.0], [1.0]]) if masked else None
    check_gradients(lambda *ts: perf.gru_cell(*ts, mask_col=mask_col), [x, h, *params])


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("batch,steps", [(1, 1), (3, 4)])
def test_gru_sequence_matches_unfused_layer(dtype, batch, steps):
    """The fused full-sequence kernel vs the composed GRU layer loop."""
    rng = np.random.default_rng(5)
    with default_dtype(dtype):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(7))
        x = _t(rng, (batch, steps, 3), dtype)
        mask = (rng.random((batch, steps)) < 0.8).astype(dtype)
        mask[:, 0] = 1.0  # every session has at least one valid step
        with perf.fusion(True):
            fused_outs, fused_final = gru(x, mask=mask)
        with perf.fusion(False):
            unfused_outs, _ = gru(x, mask=mask)
        params = [x, gru.cell.w_ih, gru.cell.w_hh, gru.cell.b_ih, gru.cell.b_hh]
        _assert_grads_match(fused_outs, unfused_outs, params, dtype)
        np.testing.assert_allclose(fused_final.data, fused_outs.data[:, -1, :])


def test_gru_sequence_gradcheck():
    rng = np.random.default_rng(6)
    x = _t(rng, (2, 3, 4), np.float64)
    params = _gru_params(rng, 4, 3, np.float64)
    h0 = _t(rng, (2, 3), np.float64)
    mask = np.array([[1, 1, 0], [1, 1, 1]], dtype=np.float64)
    check_gradients(
        lambda *ts: perf.gru_sequence(ts[0], *ts[1:5], mask=mask, h0=ts[5]), [x, *params, h0]
    )


# ----------------------------------------------------------------------
# Embedding
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("shape", [(1,), (4, 3)])
def test_embedding_lookup_matches_take(dtype, shape):
    rng = np.random.default_rng(8)
    weight = _t(rng, (7, 4), dtype)
    indices = rng.integers(0, 7, size=shape)
    _assert_grads_match(
        perf.embedding_lookup(weight, indices), weight.take(indices), [weight], dtype
    )


def test_embedding_lookup_gradcheck_with_repeats():
    rng = np.random.default_rng(9)
    weight = _t(rng, (5, 3), np.float64)
    indices = np.array([[0, 2, 2], [4, 0, 2]])  # repeated rows must accumulate
    check_gradients(lambda w: perf.embedding_lookup(w, indices), [weight])


def test_embedding_grad_buffer_is_reused_across_steps():
    """The scatter target is cached on the parameter and reused."""
    rng = np.random.default_rng(10)
    weight = _t(rng, (6, 3), np.float64)
    perf.embedding_lookup(weight, np.array([1, 2])).sum().backward()
    first_buffer = weight.grad
    weight.zero_grad()
    perf.embedding_lookup(weight, np.array([3])).sum().backward()
    assert weight.grad is first_buffer  # same allocation, zero-filled between steps
    expected = np.zeros_like(weight.data)
    expected[3] = 1.0
    np.testing.assert_allclose(weight.grad, expected)


def test_embedding_borrowed_grad_not_mutated_by_scatter():
    """A borrowed gradient array must be copied before np.add.at scatters."""
    rng = np.random.default_rng(11)
    weight = _t(rng, (4, 2), np.float64)
    external = np.ones_like(weight.data)
    weight._accumulate(external)  # borrowed: grad is external, not owned
    perf.embedding_lookup(weight, np.array([0])).sum().backward()
    np.testing.assert_allclose(external, np.ones_like(weight.data))
    assert weight.grad[0, 0] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Dyadic relation attention
# ----------------------------------------------------------------------
REL_TOL = {np.float32: dict(rtol=2e-4, atol=1e-5), np.float64: dict(rtol=1e-9, atol=1e-11)}


def _rel_setup(rng, B, T, R, d, dtype):
    q = _t(rng, (B, T, d), dtype)
    alpha = _t(rng, (B, T, T), dtype)
    table = _t(rng, (R, d), dtype)
    rel_ids = rng.integers(0, R, size=(B, T, T))
    return q, alpha, table, rel_ids


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("B,T", [(1, 1), (3, 5)])
def test_relation_scores_matches_gathered_composition(dtype, B, T):
    rng = np.random.default_rng(14)
    q, _, table, rel_ids = _rel_setup(rng, B, T, 9, 4, dtype)
    fused = perf.relation_scores(q, table, rel_ids)
    unfused = (q.unsqueeze(2) * table.take(rel_ids)).sum(axis=3)
    tol = REL_TOL[dtype]
    np.testing.assert_allclose(fused.data, unfused.data, **tol)
    fused.sum().backward()
    fused_grads = _grads([q, table])
    q.zero_grad(), table.zero_grad()
    unfused.sum().backward()
    np.testing.assert_allclose(fused_grads[0], q.grad, **tol)
    np.testing.assert_allclose(fused_grads[1], table.grad, **tol)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("B,T", [(1, 1), (3, 5)])
def test_relation_values_matches_gathered_composition(dtype, B, T):
    rng = np.random.default_rng(15)
    _, alpha, table, rel_ids = _rel_setup(rng, B, T, 9, 4, dtype)
    fused = perf.relation_values(alpha, table, rel_ids)
    unfused = (alpha.unsqueeze(3) * table.take(rel_ids)).sum(axis=2)
    tol = REL_TOL[dtype]
    np.testing.assert_allclose(fused.data, unfused.data, **tol)
    fused.sum().backward()
    fused_grads = _grads([alpha, table])
    alpha.zero_grad(), table.zero_grad()
    unfused.sum().backward()
    np.testing.assert_allclose(fused_grads[0], alpha.grad, **tol)
    np.testing.assert_allclose(fused_grads[1], table.grad, **tol)


def test_relation_kernels_gradcheck():
    rng = np.random.default_rng(16)
    q, alpha, table, rel_ids = _rel_setup(rng, 2, 3, 5, 4, np.float64)
    check_gradients(lambda q_, t_: perf.relation_scores(q_, t_, rel_ids), [q, table])
    check_gradients(lambda a_, t_: perf.relation_values(a_, t_, rel_ids), [alpha, table])


# ----------------------------------------------------------------------
# Loss
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("batch", [1, 6])
def test_log_softmax_nll_matches_cross_entropy(dtype, batch):
    rng = np.random.default_rng(12)
    logits = _t(rng, (batch, 9), dtype, scale=2.0)
    targets = rng.integers(0, 9, size=batch)
    fused = perf.log_softmax_nll(logits, targets)
    with perf.fusion(False):
        unfused = nn.cross_entropy(logits, targets)
    _assert_grads_match(fused, unfused, [logits], dtype)


def test_log_softmax_nll_gradcheck():
    rng = np.random.default_rng(13)
    logits = _t(rng, (4, 5), np.float64, scale=2.0)
    targets = np.array([0, 4, 2, 2])
    check_gradients(lambda t: perf.log_softmax_nll(t, targets), [logits])


# ----------------------------------------------------------------------
# End to end: whole models under both paths
# ----------------------------------------------------------------------
def test_fusion_toggle_is_scoped():
    assert perf.fusion_enabled()
    with perf.fusion(False):
        assert not perf.fusion_enabled()
        with perf.fusion(True):
            assert perf.fusion_enabled()
        assert not perf.fusion_enabled()
    assert perf.fusion_enabled()
