"""IVF(-PQ) index: determinism, recall behavior, and the exactness contract."""

import numpy as np
import pytest

from repro.eval.topk import top_k_indices
from repro.retrieval import (
    AUTO_ANN_THRESHOLD,
    IndexSpec,
    build_index,
    measure_recall,
    resolve_retrieval_kind,
    sample_queries,
)


def catalogue(n=2000, dim=16, centers=12, seed=0):
    rng = np.random.default_rng(seed)
    mus = rng.standard_normal((centers, dim))
    return mus[rng.integers(0, centers, n)] + 0.2 * rng.standard_normal((n, dim))


class TestSpec:
    def test_resolve_fills_autos(self):
        spec = IndexSpec().resolve(10000, 32)
        assert spec.cells == 100
        assert spec.nprobe == max(1, spec.cells // 8)

    def test_resolve_caps_by_catalogue(self):
        spec = IndexSpec(cells=500, nprobe=600).resolve(40, 8)
        assert spec.cells == 40
        assert spec.nprobe == 40

    def test_pq_m_divides_dim(self):
        spec = IndexSpec(kind="ivfpq").resolve(1000, 24)
        assert spec.pq_m > 0 and 24 % spec.pq_m == 0

    def test_dict_round_trip(self):
        spec = IndexSpec(kind="ivfpq", cells=7, nprobe=3, seed=9, pq_m=2)
        assert IndexSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_ignores_unknown_keys(self):
        spec = IndexSpec.from_dict({"kind": "ivf", "cells": 5, "future_field": 1})
        assert spec.cells == 5

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            IndexSpec(kind="hnsw")


class TestResolveRetrievalKind:
    def test_auto_thresholds_on_catalogue_size(self):
        assert resolve_retrieval_kind("auto", AUTO_ANN_THRESHOLD - 1) == "exact"
        assert resolve_retrieval_kind("auto", AUTO_ANN_THRESHOLD) == "ivf"

    def test_explicit_modes_pass_through(self):
        for mode in ("exact", "ivf", "ivfpq"):
            assert resolve_retrieval_kind(mode, 10) == mode

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown retrieval mode"):
            resolve_retrieval_kind("annoy", 10)


class TestBuildDeterminism:
    def test_rebuild_bit_identical(self):
        vecs = catalogue()
        spec = IndexSpec(cells=32, nprobe=4, seed=11)
        a = build_index(vecs, spec)
        b = build_index(vecs, spec)
        assert np.array_equal(a.centroids, b.centroids)
        assert all(np.array_equal(x, y) for x, y in zip(a.lists, b.lists))
        assert a.signature() == b.signature()

    def test_rebuild_bit_identical_with_pq(self):
        vecs = catalogue()
        spec = IndexSpec(kind="ivfpq", cells=16, nprobe=4, seed=5, pq_m=4, pq_bits=5)
        a = build_index(vecs, spec)
        b = build_index(vecs, spec)
        assert np.array_equal(a.pq.codebooks, b.pq.codebooks)
        assert np.array_equal(a.pq.codes, b.pq.codes)

    def test_different_seed_different_index(self):
        vecs = catalogue()
        a = build_index(vecs, IndexSpec(cells=32, seed=0))
        b = build_index(vecs, IndexSpec(cells=32, seed=1))
        assert not np.array_equal(a.centroids, b.centroids)

    def test_lists_partition_catalogue(self):
        index = build_index(catalogue(), IndexSpec(cells=32, seed=2))
        merged = np.sort(np.concatenate(index.lists))
        assert np.array_equal(merged, np.arange(index.n_items))


class TestRecall:
    def test_recall_monotone_in_nprobe(self):
        vecs = catalogue(n=3000)
        index = build_index(vecs, IndexSpec(cells=32, seed=3))
        queries = sample_queries(vecs, 60, seed=4)
        recalls = [
            measure_recall(index, queries, ks=(20,), nprobe=p)["recall"][20]
            for p in (1, 4, 16, 32)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:])), recalls
        assert recalls[-1] == 1.0  # full probe is exhaustive

    def test_full_probe_exact_parity(self):
        """nprobe == n_cells must reproduce full scoring exactly, ties included."""
        vecs = catalogue(n=500, dim=8)
        index = build_index(vecs, IndexSpec(cells=8, seed=0))
        queries = sample_queries(vecs, 20, seed=1)
        for q in queries:
            exact = top_k_indices(index.vectors @ q, 15)
            cand, _ = index.candidates(q, nprobe=index.n_cells)
            short = index.shortlist(q, cand)
            ann = short[top_k_indices(index.vectors[short] @ q, 15)]
            assert np.array_equal(exact, ann)

    def test_tie_stability_of_rerank(self):
        """Duplicated vectors score identically; ascending-class order must hold."""
        rng = np.random.default_rng(7)
        base = rng.standard_normal((40, 8))
        vecs = np.concatenate([base, base])  # classes i and i+40 are exact ties
        index = build_index(vecs, IndexSpec(cells=4, seed=0))
        q = rng.standard_normal(8)
        exact = top_k_indices(index.vectors @ q, 10)
        cand, _ = index.candidates(q, nprobe=index.n_cells)
        ann = cand[top_k_indices(index.vectors[cand] @ q, 10)]
        assert np.array_equal(exact, ann)
        # The winner's duplicate sits exactly 40 classes later; stable order
        # puts the lower class first.
        assert exact[1] == exact[0] + 40

    def test_candidate_widening_meets_floor(self):
        vecs = catalogue(n=200)
        index = build_index(vecs, IndexSpec(cells=32, seed=0))
        q = sample_queries(vecs, 1, seed=2)[0]
        cand, probed = index.candidates(q, nprobe=1, min_candidates=100)
        assert len(cand) >= 100
        assert probed >= 1
        assert np.array_equal(cand, np.sort(cand))

    def test_pq_shortlist_subset_and_sorted(self):
        vecs = catalogue(n=1500)
        index = build_index(
            vecs, IndexSpec(kind="ivfpq", cells=8, seed=0, pq_m=4, pq_bits=6, rerank=64)
        )
        q = sample_queries(vecs, 1, seed=3)[0]
        cand, _ = index.candidates(q, nprobe=8)
        short = index.shortlist(q, cand)
        assert len(short) == 64
        assert np.isin(short, cand).all()
        assert np.array_equal(short, np.sort(short))
