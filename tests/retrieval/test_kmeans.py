"""Determinism and geometry of the index-construction k-means."""

import numpy as np
import pytest

from repro.retrieval.kmeans import (
    KMeansResult,
    assign_l2,
    assign_spherical,
    lloyd_kmeans,
    spherical_kmeans,
)


def clustered(n=600, k=6, dim=8, seed=0, spread=0.1):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, dim)) * 3.0
    return centers[rng.integers(0, k, n)] + spread * rng.standard_normal((n, dim))


class TestDeterminism:
    @pytest.mark.parametrize("fn", [spherical_kmeans, lloyd_kmeans])
    def test_same_seed_bit_identical(self, fn):
        points = clustered()
        a = fn(points, 10, seed=7)
        b = fn(points, 10, seed=7)
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.assignments, b.assignments)

    @pytest.mark.parametrize("fn", [spherical_kmeans, lloyd_kmeans])
    def test_different_seed_different_init(self, fn):
        points = clustered()
        a = fn(points, 50, seed=0, iters=0)
        b = fn(points, 50, seed=1, iters=0)
        assert not np.array_equal(a.centroids, b.centroids)

    def test_input_not_mutated(self):
        points = clustered()
        copy = points.copy()
        spherical_kmeans(points, 5, seed=0)
        lloyd_kmeans(points, 5, seed=0)
        assert np.array_equal(points, copy)


class TestGeometry:
    def test_spherical_centroids_unit_norm(self):
        result = spherical_kmeans(clustered(), 8, seed=1)
        norms = np.sqrt((result.centroids**2).sum(axis=1))
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_recovers_separated_clusters(self):
        # Widely separated blobs: lloyd must put every blob in its own cell.
        points = clustered(n=300, k=3, dim=4, spread=0.01)
        result = lloyd_kmeans(points, 3, seed=0)
        # All points of one blob share an assignment.
        rng = np.random.default_rng(0)
        centers = rng.standard_normal((3, 4)) * 3.0
        truth = assign_l2(points, centers)
        for blob in range(3):
            cells = set(result.assignments[truth == blob].tolist())
            assert len(cells) == 1

    def test_no_empty_clusters(self):
        points = clustered(n=100, k=2, dim=4)
        for fn in (spherical_kmeans, lloyd_kmeans):
            result = fn(points, 20, seed=3)
            counts = np.bincount(result.assignments, minlength=20)
            assert (counts > 0).all(), f"{fn.__name__} left empty clusters"

    def test_assignments_are_argmax_argmin(self):
        points = clustered()
        result = spherical_kmeans(points, 6, seed=2)
        unit = points / np.sqrt((points * points).sum(axis=1, keepdims=True) + 1e-12)
        assert np.array_equal(result.assignments, assign_spherical(unit, result.centroids))

    def test_result_shape(self):
        result = lloyd_kmeans(clustered(n=50), 4, seed=0)
        assert isinstance(result, KMeansResult)
        assert result.k == 4
        assert result.centroids.shape == (4, 8)
        assert result.assignments.shape == (50,)


class TestValidation:
    def test_k_exceeding_points_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            lloyd_kmeans(clustered(n=5), 10)
