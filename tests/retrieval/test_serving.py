"""Retrieval wired into serving: artifact recipes, parity, cache scoping."""

import numpy as np
import pytest

from repro.artifacts import load_artifact, save_artifact, store_retrieval_spec
from repro.registry import ModelSpec, build_module
from repro.retrieval import IndexSpec, RetrievalPipeline, build_index
from repro.serve import RecommenderService
from repro.serving import ScoreCache, ServingGateway

N_ITEMS = 80
RAW_IDS = list(range(1000, 1000 + N_ITEMS))


@pytest.fixture()
def artifact_path(tmp_path):
    spec = ModelSpec(
        name="STAMP", family="stamp", num_items=N_ITEMS, num_ops=4, params={"dim": 8, "seed": 3}
    )
    module = build_module(spec)
    path = tmp_path / "model.npz"
    save_artifact(
        path,
        spec=spec,
        weights=dict(module.state_dict()),
        item_ids=RAW_IDS,
        metadata={"popularity": RAW_IDS[:10]},
    )
    return path


def drive(service, sid="u1"):
    for item, op in [(1005, 1), (1006, 2), (1006, 1), (1010, 0)]:
        service.record(sid, item, op)


class TestArtifactRecipe:
    def test_spec_round_trip(self, artifact_path):
        spec = IndexSpec(kind="ivf", cells=8, nprobe=3, seed=9)
        store_retrieval_spec(artifact_path, spec)
        assert load_artifact(artifact_path).retrieval_spec() == spec

    def test_no_spec_returns_none(self, artifact_path):
        assert load_artifact(artifact_path).retrieval_spec() is None

    def test_store_preserves_bundle(self, artifact_path):
        before = load_artifact(artifact_path)
        store_retrieval_spec(artifact_path, IndexSpec(cells=4))
        after = load_artifact(artifact_path)
        assert after.item_ids == before.item_ids
        assert after.metadata["popularity"] == before.metadata["popularity"]
        assert set(after.weights) == set(before.weights)
        for name in before.weights:
            assert np.array_equal(after.weights[name], before.weights[name])

    def test_rebuild_from_stored_spec_is_deterministic(self, artifact_path):
        store_retrieval_spec(artifact_path, IndexSpec(kind="ivf", cells=8, seed=4))
        svc_a = RecommenderService.from_artifact(artifact_path, retrieval="ivf")
        svc_b = RecommenderService.from_artifact(artifact_path, retrieval="ivf")
        assert svc_a.retrieval.index.signature() == svc_b.retrieval.index.signature()


class TestServiceParity:
    def test_ann_full_probe_matches_exact(self, artifact_path):
        store_retrieval_spec(artifact_path, IndexSpec(kind="ivf", cells=8, nprobe=8))
        exact = RecommenderService.from_artifact(artifact_path, retrieval="exact")
        ann = RecommenderService.from_artifact(artifact_path, retrieval="ivf")
        drive(exact)
        drive(ann)
        for exclude in (False, True):
            assert exact.top_k("u1", k=12, exclude_seen=exclude) == ann.top_k(
                "u1", k=12, exclude_seen=exclude
            )

    def test_exclude_seen_never_returns_seen(self, artifact_path):
        store_retrieval_spec(artifact_path, IndexSpec(kind="ivf", cells=8, nprobe=2))
        svc = RecommenderService.from_artifact(artifact_path, retrieval="ivf")
        drive(svc)
        items = svc.top_k("u1", k=20, exclude_seen=True)
        assert len(items) == 20
        assert not {1005, 1006, 1010} & set(items)

    def test_auto_stays_exact_below_threshold(self, artifact_path):
        svc = RecommenderService.from_artifact(artifact_path, retrieval="auto")
        assert svc.retrieval_mode == "exact"
        assert svc.retrieval_scope() is None

    def test_mode_and_scope_reported(self, artifact_path):
        svc = RecommenderService.from_artifact(artifact_path, retrieval="ivfpq")
        assert svc.retrieval_mode == "ivfpq"
        kind, generation, nprobe = svc.retrieval_scope()
        assert kind == "ivfpq" and generation >= 1 and nprobe >= 1


class TestCacheScope:
    """Regression: exact-path and ANN-path entries must never alias."""

    FP = ((1, 2), ((0,), (1,)))

    def test_scope_separates_entries(self):
        cache = ScoreCache()
        cache.put("s", self.FP, 5, [1, 2, 3], scope=None)
        cache.put("s", self.FP, 5, [9, 8, 7], scope=("ivf", 1, 4))
        assert cache.get("s", self.FP, 5, scope=None) == [1, 2, 3]
        assert cache.get("s", self.FP, 5, scope=("ivf", 1, 4)) == [9, 8, 7]

    def test_new_generation_misses_old_entries(self):
        cache = ScoreCache()
        cache.put("s", self.FP, 5, [1], scope=("ivf", 1, 4))
        assert cache.get("s", self.FP, 5, scope=("ivf", 2, 4)) is None

    def test_positional_compat(self):
        # Pre-scope call sites (positional args) keep working.
        cache = ScoreCache()
        cache.put("s", self.FP, 5, [1, 2])
        assert cache.get("s", self.FP, 5) == [1, 2]

    def test_pipeline_generations_unique(self, artifact_path):
        svc_a = RecommenderService.from_artifact(artifact_path, retrieval="ivf")
        svc_b = RecommenderService.from_artifact(artifact_path, retrieval="ivf")
        assert svc_a.retrieval.generation != svc_b.retrieval.generation


class TestGateway:
    def test_gateway_serves_and_reports_mode(self, artifact_path):
        store_retrieval_spec(artifact_path, IndexSpec(kind="ivf", cells=8, nprobe=8))
        gw = ServingGateway.from_artifact(artifact_path, retrieval="ivf")
        gw.batcher.start()
        try:
            gw.ingest("s1", 1005, 1)
            gw.ingest("s1", 1008, 2)
            first = gw.recommend("s1", k=5)
            second = gw.recommend("s1", k=5)
        finally:
            gw.batcher.stop()
        assert first["source"] == "model" and len(first["items"]) == 5
        assert second["cached"] is True
        assert second["items"] == first["items"]
        assert gw.health()["retrieval"] == "ivf"
        text = gw.registry.render_text()
        assert "retrieval_mode 1" in text
        assert "retrieval_candidates_count 1" in text
        assert "retrieval_probes_count 1" in text

    def test_exact_gateway_keeps_mode_gauge_zero(self, artifact_path):
        gw = ServingGateway.from_artifact(artifact_path, retrieval="exact")
        assert "retrieval_mode 0" in gw.registry.render_text()


class TestPipeline:
    def test_rank_queries_respects_seen_mask(self):
        rng = np.random.default_rng(0)
        vecs = rng.standard_normal((60, 8))
        index = build_index(vecs, IndexSpec(cells=4, nprobe=4))

        class _Fact:
            def query_matrix(self, batch):  # pragma: no cover - unused here
                raise NotImplementedError

        pipe = RetrievalPipeline(_Fact(), index)
        q = vecs[17] + 0.01 * rng.standard_normal(8)
        unmasked = pipe.rank_queries(q[None, :], 5)[0]
        assert unmasked[0] == 17
        masked = pipe.rank_queries(q[None, :], 5, seen_classes=[np.array([17])])[0]
        assert 17 not in masked
        assert np.array_equal(masked[:4], unmasked[1:5])

    def test_stats_observer_called(self):
        rng = np.random.default_rng(1)
        vecs = rng.standard_normal((60, 8))
        index = build_index(vecs, IndexSpec(cells=4, nprobe=2))
        seen = []
        pipe = RetrievalPipeline(None, index, observer=seen.append)
        pipe.rank_queries(rng.standard_normal((3, 8)), 5)
        assert len(seen) == 1
        stats = seen[0]
        assert stats.rows == 3
        assert stats.probes >= 6  # >= nprobe per row
        assert stats.candidates > 0
