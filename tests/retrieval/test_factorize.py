"""Factorized scoring must reproduce every model's forward pass bit-for-bit."""

import numpy as np
import pytest

from repro.baselines import BERT4Rec, GCSAN, HUP, MKMSR, NARM, RIB, SGNNHN, SRGNN, STAMP
from repro.core.embsr import EMBSR, EMBSRConfig
from repro.data.dataset import MacroSession, collate
from repro.retrieval import factorize

N_ITEMS, N_OPS = 25, 4


def batch():
    return collate(
        [
            MacroSession([1, 2, 3], [[1], [2, 1], [3]], target=4),
            MacroSession([5, 6], [[1], [2]], target=7),
            MacroSession([8, 9, 10, 11], [[1], [1], [2], [3]], target=12),
        ]
    )


MODELS = {
    "narm": lambda: NARM(N_ITEMS, dim=12, seed=1),
    "stamp": lambda: STAMP(N_ITEMS, dim=12, seed=1),
    "srgnn": lambda: SRGNN(N_ITEMS, dim=12, seed=1),
    "gcsan": lambda: GCSAN(N_ITEMS, dim=12, seed=1),
    "mkm_sr": lambda: MKMSR(N_ITEMS, N_OPS, dim=12, seed=1),
    "hup": lambda: HUP(N_ITEMS, N_OPS, dim=12, seed=1),
    "bert4rec": lambda: BERT4Rec(N_ITEMS, dim=12, seed=1),
    "rib": lambda: RIB(N_ITEMS, N_OPS, dim=12, seed=1),
    "sgnn_hn": lambda: SGNNHN(N_ITEMS, dim=12, seed=1),
    "embsr": lambda: EMBSR(EMBSRConfig(num_items=N_ITEMS, num_ops=N_OPS, dim=12, seed=1)),
}


@pytest.mark.parametrize("name", sorted(MODELS))
def test_factorization_matches_forward_bitwise(name):
    model = MODELS[name]()
    model.eval()
    b = batch()
    full = model(b).data
    fact = factorize(model)
    assert fact is not None
    recon = fact.query_matrix(b) @ fact.item_matrix().T
    assert np.array_equal(full, recon), f"{name}: max err {np.abs(full - recon).max()}"


@pytest.mark.parametrize("name", ["embsr", "sgnn_hn"])
def test_cosine_heads_detected(name):
    fact = factorize(MODELS[name]())
    assert fact.head == "cosine"
    assert fact.w_k > 0
    norms = np.sqrt((fact.item_matrix() ** 2).sum(axis=1))
    assert np.allclose(norms, 1.0, atol=1e-6)


def test_dot_head_detected():
    fact = factorize(MODELS["narm"]())
    assert fact.head == "dot"
    assert fact.w_k == 1.0


def test_item_matrix_excludes_padding_and_mask_rows():
    fact = factorize(MODELS["bert4rec"]())
    # BERT4Rec's table has num_items + 2 rows (padding + [MASK]); the
    # scoring matrix must carry exactly the real items.
    assert fact.item_matrix().shape[0] == N_ITEMS


def test_unfactorizable_model_returns_none():
    class Opaque:
        pass

    assert factorize(Opaque()) is None
