"""Bit-identity of N-worker training against the single-process reference.

The determinism contract (docs/performance.md, "Parallelism") promises that
for a fixed ``grad_shards`` grid the final parameters are *bitwise* equal for
every worker count, and therefore so is every downstream metric. These tests
hold the grid at G=4 and sweep N over {1, 2, 4} for EMBSR and one baseline
(NARM), in both float32 and float64.
"""

import numpy as np
import pytest

from repro.eval import ExperimentConfig, ExperimentRunner, evaluate_scores

GRAD_SHARDS = 4
MODELS = ["EMBSR", "NARM"]
DTYPES = ["float64", "float32"]


def _fit(dataset, model_name, dtype, workers):
    """Train one model and return (state_dict, test metrics, epoch history)."""
    config = ExperimentConfig(
        dim=16,
        epochs=2,
        batch_size=32,
        seed=3,
        dtype=dtype,
        workers=workers,
        grad_shards=GRAD_SHARDS,
    )
    runner = ExperimentRunner(dataset, config)
    recommender = runner.build(model_name)
    recommender.fit(dataset)
    state = {k: v.copy() for k, v in recommender.model.state_dict().items()}
    scores, targets = runner.score_on_test(recommender)
    metrics = evaluate_scores(scores, targets, ks=config.ks)
    history = [(h.epoch, h.train_loss, h.valid_metric) for h in recommender.trainer.history]
    return state, metrics, history


@pytest.fixture(scope="module")
def reference(dataset):
    """Lazily-cached single-process (workers=1) runs, keyed by (model, dtype)."""
    cache = {}

    def get(model_name, dtype):
        key = (model_name, dtype)
        if key not in cache:
            cache[key] = _fit(dataset, model_name, dtype, workers=1)
        return cache[key]

    return get


def _assert_bit_identical(dataset, reference, model_name, dtype, workers):
    ref_state, ref_metrics, ref_history = reference(model_name, dtype)
    state, metrics, history = _fit(dataset, model_name, dtype, workers=workers)

    assert set(state) == set(ref_state)
    for name in sorted(ref_state):
        assert state[name].dtype == ref_state[name].dtype, name
        assert np.array_equal(state[name], ref_state[name]), (
            f"{model_name}/{dtype}: parameter {name!r} diverged at "
            f"workers={workers}, max|Δ|="
            f"{np.max(np.abs(state[name] - ref_state[name])):.3e}"
        )
    # Identical parameters must yield identical HR@K / MRR@K — compared
    # exactly, not approximately.
    assert metrics == ref_metrics
    # Per-epoch losses and validation metrics (which drive model selection)
    # must also match exactly, so early stopping picks the same epoch.
    assert history == ref_history


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("model_name", MODELS)
def test_two_workers_bit_identical(dataset, reference, model_name, dtype):
    _assert_bit_identical(dataset, reference, model_name, dtype, workers=2)


@pytest.mark.slow
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("model_name", MODELS)
def test_four_workers_bit_identical(dataset, reference, model_name, dtype):
    _assert_bit_identical(dataset, reference, model_name, dtype, workers=4)


def test_workers_clamped_to_grid(dataset):
    """workers > grad_shards is clamped, not an error: W_eff = min(N, G)."""
    config = ExperimentConfig(
        dim=16, epochs=1, batch_size=32, seed=3, workers=8, grad_shards=2
    )
    runner = ExperimentRunner(dataset, config)
    recommender = runner.build("EMBSR")
    recommender.fit(dataset)  # must not raise, must clean up its segments
    assert recommender.trainer.history
