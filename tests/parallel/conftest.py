"""Shared fixtures for the data-parallel suite."""

import pytest

from repro import reliability as rel
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.parallel import orphaned_segments


@pytest.fixture(autouse=True)
def clean_failpoints():
    """No armed failpoint may leak into (or out of) any test."""
    rel.disarm_all()
    yield
    rel.disarm_all()


@pytest.fixture(autouse=True)
def no_orphaned_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(orphaned_segments())
    yield
    leaked = set(orphaned_segments()) - before
    assert not leaked, f"shared-memory segments leaked: {sorted(leaked)}"


@pytest.fixture(scope="package")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=7), cfg.operations, min_support=2, name="jd"
    )
