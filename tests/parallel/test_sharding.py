"""Unit tests for the canonical shard grid primitives."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data.dataset import DataLoader, collate, padded_dims
from repro.parallel import (
    ParamLayout,
    reduce_shards,
    shard_bounds,
    shard_generator,
    slice_batch,
)


class TestShardBounds:
    def test_partitions_every_row_exactly_once(self):
        for rows in (0, 1, 5, 64, 127):
            for shards in (1, 2, 3, 4, 7):
                bounds = shard_bounds(rows, shards)
                assert len(bounds) == shards
                assert bounds[0][0] == 0 and bounds[-1][1] == rows
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo  # contiguous, no gaps, no overlaps

    def test_first_shards_take_the_remainder(self):
        assert shard_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_shards_than_rows_leaves_empty_tails(self):
        bounds = shard_bounds(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_independent_of_worker_count_by_construction(self):
        # The grid is a function of (rows, shards) only — there is no
        # worker-count argument to leak through.
        assert shard_bounds(64, 4) == shard_bounds(64, 4)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(8, 0)
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)


class TestSliceAndPadTo:
    def test_shard_collation_matches_sliced_full_batch(self, dataset):
        """collate(rows, pad_to=dims) == slice of collate(all rows)."""
        examples = dataset.train[:13]
        full = collate(examples, max_ops_per_item=6)
        dims = padded_dims(examples, max_ops_per_item=6)
        for lo, hi in shard_bounds(len(examples), 4):
            via_slice = slice_batch(full, lo, hi)
            via_pad = collate(examples[lo:hi], max_ops_per_item=6, pad_to=dims)
            for field in (
                "items", "item_mask", "ops", "op_mask",
                "micro_items", "micro_ops", "micro_mask", "last_op", "targets",
            ):
                assert np.array_equal(getattr(via_slice, field), getattr(via_pad, field)), field

    def test_pad_to_smaller_than_needed_raises(self, dataset):
        examples = dataset.train[:4]
        with pytest.raises(ValueError, match="pad_to"):
            collate(examples, max_ops_per_item=6, pad_to=(1, 1, 1))

    def test_slice_batch_returns_views(self, dataset):
        full = collate(dataset.train[:8], max_ops_per_item=6)
        shard = slice_batch(full, 2, 5)
        assert shard.items.base is full.items
        assert shard.batch_size == 3


class TestShardGenerator:
    def test_pure_in_its_arguments(self):
        a = shard_generator(3, 1, 7, 2).random(5)
        b = shard_generator(3, 1, 7, 2).random(5)
        assert np.array_equal(a, b)

    def test_distinct_across_shards_batches_and_retries(self):
        streams = {
            shard_generator(0, e, b, s, r).random()
            for e in range(2) for b in range(2) for s in range(2) for r in range(2)
        }
        assert len(streams) == 16  # no collisions anywhere in the lattice


class TestParamLayout:
    def _params(self, dtype=np.float64):
        rng = np.random.default_rng(0)
        return [
            Tensor(rng.standard_normal((4, 3)).astype(dtype), requires_grad=True),
            Tensor(rng.standard_normal(5).astype(dtype), requires_grad=True),
        ]

    def test_write_then_bind_round_trips(self):
        params = self._params()
        layout = ParamLayout(params)
        flat = np.zeros(layout.total, dtype=layout.dtype)
        layout.write_params(flat)
        originals = [p.data.copy() for p in params]
        layout.bind_params(flat)
        for p, original in zip(params, originals):
            assert np.array_equal(p.data, original)
            assert p.data.base is flat  # actually views into the buffer

    def test_write_grads_fills_zero_for_untouched_params(self):
        params = self._params()
        layout = ParamLayout(params)
        params[0].grad = np.ones_like(params[0].data)
        params[1].grad = None
        row = np.full(layout.total, -1.0)
        layout.write_grads(row)
        assert np.all(row[:12] == 1.0)
        assert np.all(row[12:] == 0.0)

    def test_assign_grads_views_the_reduced_buffer(self):
        params = self._params()
        layout = ParamLayout(params)
        flat = np.arange(layout.total, dtype=layout.dtype)
        layout.assign_grads(flat)
        assert params[0].grad.base is flat
        assert np.array_equal(params[1].grad, flat[12:])

    def test_mixed_dtypes_rejected(self):
        params = self._params()
        params[1].data = params[1].data.astype(np.float32)
        with pytest.raises(ValueError, match="uniform parameter dtype"):
            ParamLayout(params)


class TestReduceShards:
    def test_strict_left_to_right_order(self):
        # Values chosen so float addition order is observable: the fixed
        # tree must equal the sequential loop, not a pairwise tree.
        rng = np.random.default_rng(1)
        rows = (rng.standard_normal((5, 17)) * 10.0 ** rng.integers(-8, 8, (5, 17))).astype(np.float64)
        out = np.empty(17)
        reduce_shards(rows, out)
        expected = rows[0].copy()
        for s in range(1, 5):
            expected += rows[s]
        assert np.array_equal(out, expected)

    def test_single_row_is_a_copy(self):
        rows = np.arange(6.0).reshape(1, 6)
        out = np.empty(6)
        reduce_shards(rows, out)
        assert np.array_equal(out, rows[0])


class TestLoaderRandomAccess:
    def test_collate_indices_matches_iteration(self, dataset):
        loader = DataLoader(dataset.train, batch_size=16, shuffle=True, seed=5)
        order = loader.permutation(0)
        via_iter = list(DataLoader(dataset.train, batch_size=16, shuffle=True, seed=5))
        for index, batch in enumerate(via_iter):
            direct = loader.collate_indices(order[index * 16 : (index + 1) * 16])
            assert np.array_equal(batch.items, direct.items)
            assert np.array_equal(batch.targets, direct.targets)
