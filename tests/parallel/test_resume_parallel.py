"""Checkpoint/resume across worker counts.

The contract: a run checkpointed under N workers resumes at *any* worker
count to bit-identical parameters, because the checkpoint records the
``grad_shards`` grid (the thing that defines the math) and the worker
count is explicitly non-critical (it only changes wall-clock). See
docs/performance.md, "Parallelism".
"""

import numpy as np
import pytest

from repro import reliability as rel
from repro.core import EMBSRConfig, build_sgnn_self
from repro.eval import TrainConfig, Trainer
from repro.reliability import load_training_state, save_training_state

TRAIN = dict(epochs=3, lr=0.01, seed=1)


def new_model(dataset):
    cfg = EMBSRConfig(
        num_items=dataset.num_items, num_ops=dataset.num_operations, dim=12, seed=0
    )
    return build_sgnn_self(cfg)


def batches_per_epoch(dataset, batch_size=64):
    return (len(dataset.train) + batch_size - 1) // batch_size


def assert_same_params(a, b):
    assert a.keys() == b.keys()
    for name in a:
        assert np.array_equal(a[name], b[name]), f"parameter {name} differs"


def crashed_checkpoint(dataset, path, *, workers, grad_shards):
    """Train under (workers, grad_shards), crash mid-epoch-1, leave a state file."""
    per_epoch = batches_per_epoch(dataset)
    crash_after = per_epoch + max(1, per_epoch // 2)
    cfg = TrainConfig(
        **TRAIN,
        checkpoint_path=str(path),
        checkpoint_every=1,
        workers=workers,
        grad_shards=grad_shards,
    )
    trainer = Trainer(new_model(dataset), cfg)
    rel.arm("trainer.after_batch", rel.crashing(), skip=crash_after)
    with pytest.raises(rel.SimulatedCrash):
        trainer.fit(dataset)
    rel.disarm("trainer.after_batch")
    assert path.exists()


@pytest.fixture(scope="module")
def baseline(dataset):
    """The uninterrupted single-process run on the G=2 grid."""
    trainer = Trainer(new_model(dataset), TrainConfig(**TRAIN, workers=1, grad_shards=2))
    trainer.fit(dataset)
    return trainer


class TestResumeAcrossWorkerCounts:
    def test_checkpoint_at_two_workers_resumes_serially(self, dataset, tmp_path, baseline):
        state_path = tmp_path / "state.npz"
        crashed_checkpoint(dataset, state_path, workers=2, grad_shards=2)

        # workers=1, grad_shards=0 (auto): adopts the checkpoint's grid.
        resumed = Trainer(
            new_model(dataset), TrainConfig(**TRAIN, workers=1, grad_shards=0)
        )
        resumed.resume(dataset, state_path)

        assert_same_params(baseline.model.state_dict(), resumed.model.state_dict())
        assert [(h.epoch, h.train_loss, h.valid_metric) for h in baseline.history] == [
            (h.epoch, h.train_loss, h.valid_metric) for h in resumed.history
        ]

    def test_checkpoint_serial_resumes_at_two_workers(self, dataset, tmp_path, baseline):
        state_path = tmp_path / "state.npz"
        crashed_checkpoint(dataset, state_path, workers=1, grad_shards=2)

        resumed = Trainer(
            new_model(dataset), TrainConfig(**TRAIN, workers=2, grad_shards=2)
        )
        resumed.resume(dataset, state_path)
        assert_same_params(baseline.model.state_dict(), resumed.model.state_dict())


class TestGridValidation:
    def test_checkpoint_records_the_resolved_grid(self, dataset, tmp_path):
        state_path = tmp_path / "state.npz"
        cfg = TrainConfig(
            epochs=1, lr=0.01, seed=1, checkpoint_path=str(state_path),
            workers=2, grad_shards=0,  # auto resolves to the worker count
        )
        Trainer(new_model(dataset), cfg).fit(dataset)
        state = load_training_state(state_path)
        assert state.config["grad_shards"] == 2
        # workers is recorded for information but is not resume-critical.
        assert state.config["workers"] == 2

    def test_explicit_grid_mismatch_is_rejected(self, dataset, tmp_path):
        state_path = tmp_path / "state.npz"
        crashed_checkpoint(dataset, state_path, workers=1, grad_shards=2)

        drifted = TrainConfig(**TRAIN, workers=1, grad_shards=4)
        with pytest.raises(ValueError, match="config mismatch") as excinfo:
            Trainer(new_model(dataset), drifted).resume(dataset, state_path)
        assert "grad_shards" in str(excinfo.value)

    def test_legacy_checkpoint_without_grid_key_means_classic(self, dataset, tmp_path):
        """Checkpoints from before the parallel engine carry no grad_shards
        entry; they must resume on the classic whole-batch path."""
        state_path = tmp_path / "state.npz"
        legacy_path = tmp_path / "legacy.npz"
        cfg = TrainConfig(
            epochs=1, lr=0.01, seed=1, checkpoint_path=str(state_path),
            checkpoint_every=1,
        )
        trainer = Trainer(new_model(dataset), cfg)
        rel.arm("trainer.after_batch", rel.crashing(), skip=2)
        with pytest.raises(rel.SimulatedCrash):
            trainer.fit(dataset)
        rel.disarm("trainer.after_batch")

        state = load_training_state(state_path)
        state.config.pop("grad_shards")
        state.config.pop("workers")
        save_training_state(legacy_path, state)

        resumed = Trainer(new_model(dataset), TrainConfig(epochs=1, lr=0.01, seed=1))
        resumed.resume(dataset, legacy_path)

        uninterrupted = Trainer(new_model(dataset), TrainConfig(epochs=1, lr=0.01, seed=1))
        uninterrupted.fit(dataset)
        assert_same_params(
            uninterrupted.model.state_dict(), resumed.model.state_dict()
        )
