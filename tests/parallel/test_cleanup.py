"""Shared-memory lifecycle: no segment may outlive its engine.

The acceptance bar: after a normal fit, a :class:`SimulatedCrash`
mid-training, a Ctrl-C (``KeyboardInterrupt``), or a dead worker, the
``repro-par-*`` namespace in ``/dev/shm`` is empty again. The package-level
autouse fixture already asserts this after every test; these tests exercise
each exit path explicitly and assert it inline as well.
"""

import numpy as np
import pytest

from repro import reliability as rel
from repro.autograd import default_dtype
from repro.data.dataset import DataLoader
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.parallel import DataParallelEngine, WorkerError, orphaned_segments
from repro.reliability import SimulatedCrash


def _fit(dataset, **overrides):
    config = ExperimentConfig(
        dim=16, epochs=1, batch_size=32, seed=3, workers=2, grad_shards=2, **overrides
    )
    recommender = ExperimentRunner(dataset, config).build("EMBSR")
    recommender.fit(dataset)
    return recommender


def _engine(dataset, timeout=600.0):
    loader = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=0)
    with default_dtype("float64"):
        model = (
            ExperimentRunner(dataset, ExperimentConfig(dim=16, seed=0))
            .build("EMBSR")
            .build_model()
        )
    return DataParallelEngine(
        model,
        loader,
        workers=2,
        grad_shards=2,
        seed=0,
        dtype="float64",
        eval_splits={"validation": dataset.validation},
        num_items=dataset.num_items,
        timeout=timeout,
    )


class TestNormalExit:
    def test_fit_unlinks_every_segment(self, dataset):
        _fit(dataset)
        assert orphaned_segments() == []

    def test_engine_shutdown_is_idempotent(self, dataset):
        engine = _engine(dataset)
        engine.compute(0, 0)
        engine.shutdown()
        engine.shutdown()  # second call must be a no-op, not an error
        assert orphaned_segments() == []

    def test_context_manager_cleans_up(self, dataset):
        with _engine(dataset) as engine:
            loss = engine.compute(0, 0)
            assert np.isfinite(loss)
        assert orphaned_segments() == []


class TestCrashPaths:
    def test_simulated_crash_mid_training(self, dataset):
        rel.arm("trainer.after_batch", rel.crashing(), skip=2)
        with pytest.raises(SimulatedCrash):
            _fit(dataset)
        assert orphaned_segments() == []

    def test_keyboard_interrupt_mid_training(self, dataset):
        # Workers ignore SIGINT; the master's KeyboardInterrupt must still
        # tear the arena down on its way out of Trainer.fit's finally.
        rel.arm("trainer.after_batch", rel.raising(KeyboardInterrupt), skip=2)
        with pytest.raises(KeyboardInterrupt):
            _fit(dataset)
        assert orphaned_segments() == []

    def test_dead_worker_raises_worker_error_not_deadlock(self, dataset):
        # A worker that vanishes mid-protocol must surface as WorkerError
        # (via the broken barrier) within the engine timeout — and the
        # segments must still come down afterwards.
        engine = _engine(dataset, timeout=5.0)
        try:
            engine._procs[0].terminate()
            engine._procs[0].join()
            with pytest.raises(WorkerError):
                engine.compute(0, 0)
        finally:
            engine.shutdown()
        assert orphaned_segments() == []

    def test_worker_side_exception_reports_and_recovers_cleanup(self, dataset):
        # An exception inside a worker (not process death) sets its error
        # flag, reaches the done barrier, and surfaces as WorkerError with
        # the worker's traceback — then shuts down cleanly.
        engine = _engine(dataset)
        try:
            with pytest.raises(WorkerError, match="raised during"):
                # batch_index far past the epoch's batch count -> every
                # worker hits padded_dims([]) and raises; flags come back
                # through the ctrl block, not a hung barrier.
                engine.compute(0, 10_000)
        finally:
            engine.shutdown()
        assert orphaned_segments() == []
