"""Benchmark-cell fan-out: pooled runs must be byte-identical to serial.

Cells of a ``model × dataset`` grid are independent — each builds its
model from a fresh spec-seeded generator — so :func:`run_experiment_cells`
promises that fanning them across a fork pool changes nothing observable:
not the metrics, not a single byte of the score matrices, not the caching
behaviour of the runner.
"""

import json

import numpy as np
import pytest

from repro.eval import ExperimentConfig, ExperimentRunner
from repro.parallel import run_experiment_cells

NAMES = ["EMBSR", "NARM", "S-POP"]


def _runner(dataset):
    return ExperimentRunner(
        dataset, ExperimentConfig(dim=16, epochs=2, batch_size=32, seed=3)
    )


@pytest.fixture(scope="module")
def serial(dataset):
    runner = _runner(dataset)
    run_experiment_cells(runner, NAMES, workers=1)
    return runner


def test_pooled_cells_byte_identical_to_serial(dataset, serial):
    pooled = _runner(dataset)
    run_experiment_cells(pooled, NAMES, workers=2)

    assert set(pooled.results) == set(serial.results)
    for name in NAMES:
        ours, ref = pooled.results[name], serial.results[name]
        assert ours.metrics == ref.metrics, name
        assert np.array_equal(ours.scores, ref.scores), name
        assert np.array_equal(ours.target_classes, ref.target_classes), name
        # The JSON a benchmark driver would write from these metrics must
        # be byte-identical, not merely approximately equal.
        assert json.dumps(ours.metrics, sort_keys=True) == json.dumps(
            ref.metrics, sort_keys=True
        ), name


def test_merged_recommenders_rescore_identically(dataset, serial):
    """The fitted recommender objects that travel back through the pool
    must be usable in the parent exactly like locally-fitted ones."""
    pooled = _runner(dataset)
    run_experiment_cells(pooled, ["EMBSR"], workers=2)
    scores, targets = pooled.score_on_test(pooled.results["EMBSR"].recommender)
    assert np.array_equal(scores, serial.results["EMBSR"].scores)
    assert np.array_equal(targets, serial.results["EMBSR"].target_classes)


def test_pool_respects_runner_cache(dataset, serial):
    pooled = _runner(dataset)
    run_experiment_cells(pooled, ["S-POP"], workers=1)
    sentinel = pooled.results["S-POP"]
    # A second fan-out over a superset must not re-run the cached cell.
    run_experiment_cells(pooled, NAMES, workers=2)
    assert pooled.results["S-POP"] is sentinel
    assert set(pooled.results) == set(NAMES)


def test_single_pending_cell_falls_back_to_serial(dataset):
    pooled = _runner(dataset)
    out = run_experiment_cells(pooled, ["S-POP"], workers=8)
    assert set(out) == {"S-POP"}
    assert "S-POP" in pooled.results
