"""Data-parallel training from packed (and memmap-backed) datasets.

The packed pipeline promises bitwise-identical training: columnar collation
is the loop collate byte-for-byte, and a memmap-loaded dataset is the same
arrays read through the page cache. So N-worker training from a packed —
even file-backed — dataset must land on exactly the parameters the object
path produces, and the workers must share the memmap pages rather than
materializing per-worker example lists.
"""

import numpy as np
import pytest

from repro.data.packed import load_packed, pack_dataset
from repro.eval import ExperimentConfig, ExperimentRunner


def _fit(dataset, *, workers=1, packed=False, prefetch=False):
    config = ExperimentConfig(
        dim=16,
        epochs=2,
        batch_size=32,
        seed=3,
        workers=workers,
        grad_shards=2,
        packed=packed,
        prefetch=prefetch,
    )
    runner = ExperimentRunner(dataset, config)
    recommender = runner.build("NARM")
    recommender.fit(dataset)
    return {k: v.copy() for k, v in recommender.model.state_dict().items()}


@pytest.fixture(scope="module")
def object_reference(dataset):
    """Two-worker object-path run: the bitwise target for every packed run."""
    return _fit(dataset, workers=2)


def _assert_states_equal(state, ref):
    assert set(state) == set(ref)
    for name in sorted(ref):
        assert np.array_equal(state[name], ref[name]), name


def test_two_workers_packed_flag_bit_identical(dataset, object_reference):
    state = _fit(dataset, workers=2, packed=True)
    _assert_states_equal(state, object_reference)


def test_two_workers_packed_prefetch_bit_identical(dataset, object_reference):
    state = _fit(dataset, workers=2, packed=True, prefetch=True)
    _assert_states_equal(state, object_reference)


def test_two_workers_from_memmap_file_bit_identical(tmp_path, dataset, object_reference):
    """Training straight off a memmap-loaded .rpk file: same parameters."""
    path = tmp_path / "jd.rpk"
    pack_dataset(dataset).save(path)
    loaded = load_packed(path, mmap=True)
    state = _fit(loaded, workers=2)
    _assert_states_equal(state, object_reference)


def test_packed_splits_stay_unmaterialized(dataset):
    """The engine must not expand a PackedSplit into a per-worker object
    list — that is the whole memory win of the memmap path."""
    from repro.data.dataset import DataLoader

    packed = pack_dataset(dataset)
    loader = DataLoader(packed.train, batch_size=32)
    assert loader.examples is packed.train  # not list(...)
    assert getattr(loader.examples, "__packed_split__", False)
