"""Parity and round-trip suite for the packed columnar format.

The contract under test (docs/data.md): the vectorized collate over CSR
arrays is **bitwise-identical** to the per-example loop collate under every
combination of truncation, forced padding, buffer reuse, and prefetch, and
a pack → save → memmap-load → to_prepared round trip is lossless.
"""

import numpy as np
import pytest

from repro.data import (
    generate_dataset,
    jd_appliances_config,
    jd_computers_config,
    load_packed,
    pack_dataset,
    prepare_dataset,
    trivago_config,
)
from repro.data.dataset import CollateBuffers, DataLoader, collate, padded_dims
from repro.data.packed import PackedSplit, packed_padded_dims, read_packed_header
from repro.data.schema import MacroSession
from repro.data.stats import dataset_fingerprint

FIELDS = (
    "items",
    "item_mask",
    "ops",
    "op_mask",
    "micro_items",
    "micro_ops",
    "micro_mask",
    "last_op",
    "targets",
)


def assert_batches_identical(a, b, context=""):
    for field in FIELDS:
        x, y = getattr(a, field), getattr(b, field)
        assert x.dtype == y.dtype, f"{context}{field}: dtype {x.dtype} != {y.dtype}"
        assert x.shape == y.shape, f"{context}{field}: shape {x.shape} != {y.shape}"
        assert np.array_equal(x, y), f"{context}{field}: values differ"


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 300, seed=11), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture(scope="module")
def packed(dataset):
    return pack_dataset(dataset)


def random_ragged_examples(seed, count=40):
    """Random ragged sessions covering the paper's edge shapes.

    Mix of: single-op steps, op runs longer than any k cap (truncation),
    length-1 macro sequences, and max-length sessions.
    """
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        style = i % 4
        if style == 0:  # every step single-op
            n = int(rng.integers(1, 8))
            ops = [[int(rng.integers(0, 5))] for _ in range(n)]
        elif style == 1:  # long op runs, will truncate under any small cap
            n = int(rng.integers(1, 5))
            ops = [list(rng.integers(0, 5, size=int(rng.integers(7, 15)))) for _ in range(n)]
        elif style == 2:  # length-1 macro
            n = 1
            ops = [list(rng.integers(0, 5, size=int(rng.integers(1, 6))))]
        else:  # max-length macro
            n = 20
            ops = [list(rng.integers(0, 5, size=int(rng.integers(1, 6)))) for _ in range(n)]
        items = [int(x) for x in rng.integers(1, 50, size=n)]
        out.append(
            MacroSession(items, ops, target=int(rng.integers(1, 50)), session_id=i)
        )
    return out


# ----------------------------------------------------------------------
# collate parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cap", [None, 1, 3, 6, 100])
def test_collate_parity_random_ragged(cap):
    examples = random_ragged_examples(seed=cap if cap is not None else 99)
    split = PackedSplit.from_examples(examples)
    rng = np.random.default_rng(0)
    for _ in range(10):
        idx = rng.choice(len(examples), size=int(rng.integers(1, len(examples))), replace=False)
        loop = collate([examples[i] for i in idx], max_ops_per_item=cap)
        vec = split.collate(idx, max_ops_per_item=cap)
        assert_batches_identical(loop, vec, context=f"cap={cap} ")


def test_collate_parity_with_pad_to_and_buffers():
    examples = random_ragged_examples(seed=7)
    split = PackedSplit.from_examples(examples)
    buffers = CollateBuffers()
    rng = np.random.default_rng(1)
    for _ in range(10):
        idx = rng.choice(len(examples), size=12, replace=False)
        chunk = [examples[i] for i in idx]
        dims = padded_dims(chunk, 6)
        pad = (dims[0] + 3, dims[1], dims[2] + 5)
        loop = collate(chunk, max_ops_per_item=6, pad_to=pad)
        vec = split.collate(idx, max_ops_per_item=6, pad_to=pad, buffers=buffers)
        assert_batches_identical(loop, vec, context="pad_to+buffers ")


def test_packed_padded_dims_matches_object_path():
    examples = random_ragged_examples(seed=5)
    split = PackedSplit.from_examples(examples)
    rng = np.random.default_rng(2)
    for cap in (None, 1, 4, 6):
        idx = rng.choice(len(examples), size=17, replace=False)
        assert packed_padded_dims(split, idx, cap) == padded_dims(
            [examples[i] for i in idx], cap
        )


def test_collate_rejects_empty_and_undersized_pad():
    split = PackedSplit.from_examples(random_ragged_examples(seed=3, count=5))
    with pytest.raises(ValueError, match="empty"):
        split.collate([])
    with pytest.raises(ValueError, match="pad_to"):
        split.collate([0, 1], max_ops_per_item=6, pad_to=(1, 1, 1))


def test_collate_parity_on_prepared_dataset(dataset, packed):
    rng = np.random.default_rng(9)
    for split_name in ("train", "validation", "test"):
        objs = getattr(dataset, split_name)
        csr = getattr(packed, split_name)
        idx = rng.permutation(len(objs))[:64]
        loop = collate([objs[i] for i in idx], max_ops_per_item=6)
        vec = csr.collate(idx, max_ops_per_item=6)
        assert_batches_identical(loop, vec, context=f"{split_name} ")


# ----------------------------------------------------------------------
# DataLoader integration: packed / buffers / prefetch / bucketing
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"reuse_buffers": True},
        {"prefetch": True},
        {"prefetch": True, "reuse_buffers": True},
        {"bucket_lengths": True},
        {"prefetch": True, "bucket_lengths": True},
    ],
)
def test_loader_parity_object_vs_packed(dataset, packed, kwargs):
    base = DataLoader(
        dataset.train,
        batch_size=19,
        shuffle=True,
        seed=4,
        bucket_lengths=kwargs.get("bucket_lengths", False),
    )
    other = DataLoader(packed.train, batch_size=19, shuffle=True, seed=4, **kwargs)
    count = 0
    for a, b in zip(base, other):
        assert_batches_identical(a, b, context=f"{kwargs} ")
        count += 1
    assert count == len(base) == len(other)


def test_loader_prefetch_multiple_epochs_pure(dataset, packed):
    """Prefetch preserves the pure (seed, epoch) permutation across passes."""
    sync = DataLoader(packed.train, batch_size=23, shuffle=True, seed=8)
    pre = DataLoader(packed.train, batch_size=23, shuffle=True, seed=8, prefetch=True)
    for _epoch in range(3):
        for a, b in zip(sync, pre):
            assert_batches_identical(a, b)
    assert sync.epoch == pre.epoch == 3


def test_loader_prefetch_early_break_is_clean(packed):
    """Abandoning a prefetch iterator mid-epoch must not wedge or corrupt."""
    loader = DataLoader(packed.train, batch_size=8, shuffle=True, seed=0, prefetch=True)
    it = iter(loader)
    next(it)
    next(it)
    it.close()
    # The next full pass still works and matches a fresh loader's epoch-1 pass.
    fresh = DataLoader(packed.train, batch_size=8, shuffle=True, seed=0)
    fresh.set_epoch(1)
    for a, b in zip(loader, fresh):
        assert_batches_identical(a, b)


def test_loader_collate_indices_and_subset_dims(dataset, packed):
    lo = DataLoader(dataset.train, batch_size=16, max_ops_per_item=6)
    lp = DataLoader(packed.train, batch_size=16, max_ops_per_item=6)
    idx = [3, 0, 17, 5]
    assert lo.subset_dims(idx) == lp.subset_dims(idx)
    dims = lo.subset_dims(idx)
    pad = (dims[0] + 1, dims[1], dims[2] + 2)
    buffers = CollateBuffers()
    assert_batches_identical(
        lo.collate_indices(idx, pad_to=pad),
        lp.collate_indices(idx, pad_to=pad, buffers=buffers),
    )


# ----------------------------------------------------------------------
# PackedSplit sequence surface + round trips
# ----------------------------------------------------------------------
def test_packed_split_behaves_like_a_sequence(dataset, packed):
    split = packed.train
    assert len(split) == len(dataset.train)
    for i in (0, 1, len(split) - 1, -1):
        ex = split[i]
        ref = dataset.train[i]
        assert ex.macro_items == ref.macro_items
        assert ex.op_sequences == ref.op_sequences
        assert ex.target == ref.target
        assert ex.session_id == ref.session_id
    with pytest.raises(IndexError):
        split[len(split)]
    assert sum(1 for _ in split) == len(split)


def test_from_examples_requires_targets():
    bad = MacroSession([1, 2], [[0], [1]], target=None, session_id=0)
    with pytest.raises(ValueError, match="target"):
        PackedSplit.from_examples([bad])


def test_select_reorders_losslessly():
    examples = random_ragged_examples(seed=13, count=20)
    split = PackedSplit.from_examples(examples)
    order = np.random.default_rng(0).permutation(20)[:11]
    sub = split.select(order)
    for j, i in enumerate(order):
        got, ref = sub[j], examples[i]
        assert got.macro_items == ref.macro_items
        assert got.op_sequences == ref.op_sequences
        assert got.target == ref.target


@pytest.mark.parametrize(
    "config_fn,sparsity",
    [
        (jd_appliances_config, 0.0),
        (jd_computers_config, 0.0),
        (trivago_config, 0.0),
        (jd_appliances_config, 0.5),
        (trivago_config, 0.8),
    ],
)
def test_memmap_round_trip_all_personas(tmp_path, config_fn, sparsity):
    """pack → save → load (memmap and in-memory) → to_prepared is lossless
    across every synthetic persona/sparsity configuration."""
    cfg = config_fn(sparsity=sparsity)
    ds = prepare_dataset(
        generate_dataset(cfg, 150, seed=2), cfg.operations, min_support=2, name=cfg.name
    )
    packed = pack_dataset(ds)
    path = tmp_path / "ds.rpk"
    packed.save(path)
    for mmap in (True, False):
        loaded = load_packed(path, mmap=mmap)
        assert loaded.fingerprint == packed.fingerprint == dataset_fingerprint(ds)
        back = loaded.to_prepared()
        assert back.vocab.ordered_raw_ids() == ds.vocab.ordered_raw_ids()
        assert list(back.operations.names) == list(ds.operations.names)
        assert dataset_fingerprint(back) == dataset_fingerprint(ds)
        for split_name in ("train", "validation", "test"):
            a, b = getattr(ds, split_name), getattr(back, split_name)
            assert len(a) == len(b)
            for x, y in zip(a, b):
                assert (x.macro_items, x.op_sequences, x.target, x.session_id) == (
                    y.macro_items,
                    y.op_sequences,
                    y.target,
                    y.session_id,
                )


def test_memmap_arrays_are_file_backed(tmp_path, packed):
    path = tmp_path / "ds.rpk"
    packed.save(path)
    loaded = load_packed(path, mmap=True)
    base = loaded.train.macro_items
    seen_memmap = False
    while isinstance(base, np.ndarray):
        seen_memmap = seen_memmap or isinstance(base, np.memmap)
        base = base.base
    assert seen_memmap
    # Loader batches straight off the memmap views.
    batch = DataLoader(loaded.train, batch_size=32).collate_indices(range(32))
    ref = DataLoader(packed.train, batch_size=32).collate_indices(range(32))
    assert_batches_identical(batch, ref)


def test_header_round_trip_and_magic(tmp_path, packed):
    path = tmp_path / "ds.rpk"
    packed.save(path)
    header = read_packed_header(path)
    assert header["format_version"] == 1
    assert header["name"] == packed.name
    assert header["fingerprint"] == packed.fingerprint
    assert header["splits"]["train"]["sessions"] == len(packed.train)
    bogus = tmp_path / "not_packed.json"
    bogus.write_text("{}")
    with pytest.raises(ValueError, match="magic"):
        read_packed_header(bogus)


def test_future_format_version_rejected(tmp_path, packed):
    import json

    from repro.data.packed import MAGIC

    path = tmp_path / "ds.rpk"
    packed.save(path)
    raw = bytearray(path.read_bytes())
    header_len = int.from_bytes(raw[8:16], "little")
    header = json.loads(bytes(raw[16 : 16 + header_len]))
    header["format_version"] = 9  # single digit: same byte budget as "1"
    new_header = json.dumps(header).encode()
    # Keep the byte length identical so offsets stay valid.
    assert len(new_header) <= header_len
    raw[16 : 16 + header_len] = new_header + b" " * (header_len - len(new_header))
    assert bytes(raw[:8]) == MAGIC
    path.write_bytes(bytes(raw))
    with pytest.raises(ValueError, match="version"):
        load_packed(path)


def test_save_is_atomic(tmp_path, packed):
    """A crash mid-write must never leave a truncated packed file behind."""
    from repro import reliability as rel

    path = tmp_path / "ds.rpk"
    rel.arm("serialization.mid_write", rel.crashing())
    try:
        with pytest.raises(rel.SimulatedCrash):
            packed.save(path)
    finally:
        rel.disarm_all()
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []
