"""Unit tests for preprocessing: filtering, splitting, vocab, views."""

import numpy as np
import pytest

from repro.data import (
    JD_OPERATIONS,
    Interaction,
    ItemVocab,
    MacroSession,
    Session,
    augment_prefixes,
    generate_dataset,
    jd_appliances_config,
    prepare_dataset,
    single_operation_view,
)


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    sessions = generate_dataset(cfg, 800, seed=2)
    return prepare_dataset(sessions, cfg.operations, name="jd", min_support=5)


class TestItemVocab:
    def test_dense_one_based(self):
        vocab = ItemVocab([10, 99, 10, 3])
        assert len(vocab) == 3
        assert vocab.num_ids == 4
        assert sorted(vocab.encode(r) for r in (3, 10, 99)) == [1, 2, 3]

    def test_roundtrip(self):
        vocab = ItemVocab([5, 7])
        for raw in (5, 7):
            assert vocab.decode(vocab.encode(raw)) == raw

    def test_contains(self):
        vocab = ItemVocab([5])
        assert 5 in vocab and 6 not in vocab


class TestPrepareDataset:
    def test_split_fractions(self, dataset):
        total = len(dataset.train) + len(dataset.validation) + len(dataset.test)
        assert len(dataset.train) / total == pytest.approx(0.7, abs=0.05)
        assert len(dataset.test) / total == pytest.approx(0.2, abs=0.05)

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            prepare_dataset([], JD_OPERATIONS, split=(0.5, 0.5, 0.5))

    def test_targets_valid_dense_ids(self, dataset):
        for ex in dataset.train + dataset.validation + dataset.test:
            assert 1 <= ex.target <= dataset.num_items

    def test_no_single_item_sessions(self, dataset):
        for ex in dataset.train:
            assert len(ex) >= 1  # input after target removal

    def test_target_not_last_input_item(self, dataset):
        for ex in dataset.test:
            assert ex.target != ex.macro_items[-1]

    def test_min_support_filters_rare_items(self):
        # Item 1 appears once; sessions keep only frequent items.
        sessions = [
            Session([Interaction(1, 0), Interaction(2, 0), Interaction(3, 0)]),
        ] + [
            Session([Interaction(2, 0), Interaction(3, 0)], session_id=i)
            for i in range(1, 12)
        ]
        ds = prepare_dataset(sessions, JD_OPERATIONS, min_support=5, seed=0)
        assert ds.num_items == 2  # items 2 and 3 survive

    def test_max_macro_len_truncates_keeping_recent(self):
        interactions = [Interaction(i, 0) for i in range(30)]
        # Repeat the corpus so nothing is filtered by support.
        sessions = [Session(list(interactions), session_id=i) for i in range(20)]
        ds = prepare_dataset(sessions, JD_OPERATIONS, min_support=1, max_macro_len=5)
        for ex in ds.train:
            assert len(ex) == 5
            # Most recent items kept: positions 24..28 (29 is the target).
            assert ex.macro_items[-1] == ds.vocab.encode(28)


class TestAugmentPrefixes:
    def test_counts(self):
        ex = MacroSession([1, 2, 3], [[0], [1], [0]], target=4)
        out = augment_prefixes([ex])
        # original + prefixes of length 1 and 2
        assert len(out) == 3
        assert out[1].macro_items == [1] and out[1].target == 2
        assert out[2].macro_items == [1, 2] and out[2].target == 3

    def test_original_preserved_first(self):
        ex = MacroSession([1, 2], [[0], [1]], target=9)
        out = augment_prefixes([ex])
        assert out[0] is ex


class TestSingleOperationView:
    def test_keeps_only_requested_ops(self):
        ex = MacroSession([1, 2, 3], [[0, 5], [4], [0]], target=7)
        view = single_operation_view([ex], JD_OPERATIONS, keep_ops={0})
        assert view[0].macro_items == [1, 3]
        assert view[0].op_sequences == [[0], [0]]

    def test_target_unchanged(self):
        ex = MacroSession([1, 2], [[4], [0]], target=7)
        view = single_operation_view([ex], JD_OPERATIONS, keep_ops={0})
        assert view[0].target == 7

    def test_empty_filter_falls_back_to_last_step(self):
        ex = MacroSession([1, 2], [[4], [5]], target=7)
        view = single_operation_view([ex], JD_OPERATIONS, keep_ops={0})
        assert view[0].macro_items == [2]
        assert view[0].op_sequences == [[5]]
