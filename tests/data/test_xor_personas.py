"""Tests pinning the XOR structure of the JD researcher/skeptic personas.

Fig. 5's reproduction relies on the two personas being separable through
operation *pairs* but not through per-position operation marginals; these
tests keep that construction from regressing.
"""

from collections import Counter

import numpy as np
import pytest

from repro.data import JD_OPERATIONS, jd_appliances_config
from repro.data.synthetic import SyntheticSessionGenerator


@pytest.fixture(scope="module")
def chains():
    gen = SyntheticSessionGenerator(jd_appliances_config(), seed=11)
    personas = {p.name: p for p in gen.config.personas}
    out = {}
    for name in ("researcher", "skeptic"):
        out[name] = [gen._sample_ops(personas[name]) for _ in range(4000)]
    return out


def position_marginal(chains, position):
    counts = Counter(c[position] for c in chains if len(c) > position)
    total = sum(counts.values())
    return {op: n / total for op, n in counts.items()}


class TestXORStructure:
    def test_position_marginals_match(self, chains):
        """Researcher and skeptic are indistinguishable per position."""
        for position in (0, 1, 2):
            a = position_marginal(chains["researcher"], position)
            b = position_marginal(chains["skeptic"], position)
            assert set(a) == set(b), f"position {position}: different supports"
            for op in a:
                assert a[op] == pytest.approx(b[op], abs=0.05), (
                    f"position {position}, op {JD_OPERATIONS.name_of(op)}"
                )

    def test_pair_distributions_differ(self, chains):
        """The (o_2, o_3) pairing separates the personas."""
        comments = JD_OPERATIONS.id_of("Detail_comments")
        cart = JD_OPERATIONS.id_of("Cart")

        def comments_then_cart_rate(cs):
            eligible = [c for c in cs if len(c) >= 3 and c[1] == comments]
            if not eligible:
                return 0.0
            return sum(c[2] == cart for c in eligible) / len(eligible)

        researcher_rate = comments_then_cart_rate(chains["researcher"])
        skeptic_rate = comments_then_cart_rate(chains["skeptic"])
        assert researcher_rate > 0.8
        assert skeptic_rate < 0.1

    def test_chain_length_distribution_matches(self, chains):
        a = np.mean([len(c) for c in chains["researcher"]])
        b = np.mean([len(c) for c in chains["skeptic"]])
        assert a == pytest.approx(b, abs=0.15)
