"""Tests for Session/MacroSession convenience accessors."""

from repro.data import Interaction, MacroSession, Session


class TestSession:
    session = Session(
        [Interaction(3, 0), Interaction(3, 1), Interaction(7, 0)], session_id=42
    )

    def test_items_and_operations(self):
        assert self.session.items == [3, 3, 7]
        assert self.session.operations == [0, 1, 0]

    def test_distinct_items(self):
        assert self.session.distinct_items() == {3, 7}

    def test_len(self):
        assert len(self.session) == 3

    def test_session_id(self):
        assert self.session.session_id == 42


class TestMacroSessionProps:
    macro = MacroSession([3, 7], [[0, 1], [0]], target=9, session_id=5)

    def test_num_micro(self):
        assert self.macro.num_micro_behaviors == 3

    def test_flat_roundtrip_types(self):
        flat = self.macro.flat_micro()
        assert all(isinstance(x, Interaction) for x in flat)
        assert flat[0] == Interaction(3, 0)
        assert flat[-1] == Interaction(7, 0)
