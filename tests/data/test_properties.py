"""Property-based tests for data invariants (schema, collation, graphs)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import Interaction, MacroSession, Session, collate, merge_successive
from repro.graphs import BatchGraph, SessionGraph

settings.register_profile("repro-data", deadline=None, max_examples=60)
settings.load_profile("repro-data")

interactions = st.lists(
    st.tuples(st.integers(1, 8), st.integers(0, 5)).map(lambda t: Interaction(*t)),
    min_size=1,
    max_size=20,
)


def _dedupe_successive(items):
    out = [items[0]]
    for x in items[1:]:
        if x != out[-1]:
            out.append(x)
    return out


class TestMergeProperties:
    @given(interactions)
    def test_micro_count_preserved(self, micro):
        macro = merge_successive(Session(micro))
        assert macro.num_micro_behaviors == len(micro)

    @given(interactions)
    def test_no_successive_duplicates(self, micro):
        macro = merge_successive(Session(micro))
        for a, b in zip(macro.macro_items, macro.macro_items[1:]):
            assert a != b

    @given(interactions)
    def test_roundtrip_flat_micro(self, micro):
        macro = merge_successive(Session(micro))
        assert macro.flat_micro() == micro

    @given(interactions)
    def test_item_multiset_preserved(self, micro):
        macro = merge_successive(Session(micro))
        flat_items = [i for item, ops in zip(macro.macro_items, macro.op_sequences) for i in [item] * len(ops)]
        assert flat_items == [x.item for x in micro]


macro_sessions = st.lists(
    st.tuples(
        st.lists(st.integers(1, 9), min_size=1, max_size=6).map(_dedupe_successive),
        st.integers(1, 9),
    ),
    min_size=1,
    max_size=5,
)


def build_examples(raw):
    out = []
    for items, target in raw:
        ops = [[0] for _ in items]
        out.append(MacroSession(items, ops, target=target))
    return out


class TestCollateProperties:
    @given(macro_sessions)
    def test_masks_consistent(self, raw):
        batch = collate(build_examples(raw))
        # item ids are nonzero exactly where the mask is set
        assert ((batch.items > 0) == (batch.item_mask > 0)).all()
        assert ((batch.micro_items > 0) == (batch.micro_mask > 0)).all()
        assert ((batch.ops > 0) == (batch.op_mask > 0)).all()

    @given(macro_sessions)
    def test_lengths_match_inputs(self, raw):
        examples = build_examples(raw)
        batch = collate(examples)
        assert batch.macro_lengths().tolist() == [len(e) for e in examples]

    @given(macro_sessions)
    def test_micro_equals_total_ops(self, raw):
        examples = build_examples(raw)
        batch = collate(examples)
        assert batch.micro_lengths().tolist() == [e.num_micro_behaviors for e in examples]


class TestGraphProperties:
    @given(st.lists(st.integers(1, 6), min_size=1, max_size=10).map(_dedupe_successive))
    def test_edges_equal_transitions(self, items):
        g = SessionGraph(items)
        assert g.num_edges == len(items) - 1
        assert g.num_nodes == len(set(items))

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=10).map(_dedupe_successive))
    def test_alias_consistent(self, items):
        g = SessionGraph(items)
        for pos, item in enumerate(items):
            assert g.nodes[g.alias[pos]] == item

    @given(macro_sessions)
    def test_batch_graph_degree_conservation(self, raw):
        """Total in-degree == total out-degree == number of transitions."""
        batch = collate(build_examples(raw))
        g = BatchGraph.from_batch(batch)
        n_trans = g.trans_mask.sum()
        assert g.scatter_in.sum() == n_trans
        assert g.scatter_out.sum() == n_trans

    @given(macro_sessions)
    def test_batch_graph_gather_recovers_items(self, raw):
        batch = collate(build_examples(raw))
        g = BatchGraph.from_batch(batch)
        rec = np.einsum("bnc,bc->bn", g.gather, g.node_items.astype(float))
        assert np.allclose(rec, batch.items * batch.item_mask)
