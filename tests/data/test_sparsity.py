"""The ``sparsity`` knob: low-signal drifter sessions for the SSL ablation."""

import pytest

from repro.data import generate_dataset, prepare_dataset
from repro.data.synthetic import (
    jd_appliances_config,
    jd_computers_config,
    trivago_config,
)

CONFIGS = [jd_appliances_config, jd_computers_config, trivago_config]


def session_key(session):
    return [(i.item, i.operation) for i in session.interactions]


def all_single_op_fraction(sessions) -> float:
    """Sessions whose every macro item carries exactly one micro-operation."""
    hits = 0
    for s in sessions:
        items = [i.item for i in s.interactions]
        macro = 1 + sum(1 for a, b in zip(items, items[1:]) if a != b)
        if len(s.interactions) == macro:
            hits += 1
    return hits / len(sessions)


class TestBackwardCompatibility:
    @pytest.mark.parametrize("config_fn", CONFIGS)
    def test_zero_sparsity_is_bit_identical_to_default(self, config_fn):
        """sparsity=0.0 must consume exactly the pre-knob RNG draws, so
        every existing dataset regenerates unchanged."""
        before = generate_dataset(config_fn(), 150, seed=7)
        after = generate_dataset(config_fn(sparsity=0.0), 150, seed=7)
        assert [session_key(s) for s in before] == [session_key(s) for s in after]

    def test_default_config_has_zero_sparsity(self):
        assert jd_appliances_config().sparsity == 0.0


class TestSparsityDistribution:
    @pytest.mark.parametrize("config_fn", CONFIGS)
    def test_sparsity_raises_single_op_session_fraction(self, config_fn):
        dense = all_single_op_fraction(generate_dataset(config_fn(), 400, seed=3))
        sparse = all_single_op_fraction(
            generate_dataset(config_fn(sparsity=0.6), 400, seed=3)
        )
        # Drifters emit exactly one op per item, so the fraction must climb
        # by roughly the injection rate (loose bound: non-drifters can also
        # produce all-single-op sessions by chance).
        assert sparse > dense + 0.3

    def test_drifter_sessions_are_short(self):
        cfg = jd_appliances_config(sparsity=1.0)
        sessions = generate_dataset(cfg, 200, seed=3)
        for s in sessions:
            items = [i.item for i in s.interactions]
            macro = 1 + sum(1 for a, b in zip(items, items[1:]) if a != b)
            # min_macro_len + 1 input steps, plus the appended target.
            assert macro <= cfg.min_macro_len + 2

    def test_same_seed_same_sparsity_is_deterministic(self):
        a = generate_dataset(jd_appliances_config(sparsity=0.5), 100, seed=11)
        b = generate_dataset(jd_appliances_config(sparsity=0.5), 100, seed=11)
        assert [session_key(s) for s in a] == [session_key(s) for s in b]

    def test_sparse_dataset_still_prepares(self):
        cfg = jd_appliances_config(sparsity=0.7)
        dataset = prepare_dataset(
            generate_dataset(cfg, 300, seed=3), cfg.operations, min_support=2, name="sparse"
        )
        assert len(dataset.train) > 0 and len(dataset.test) > 0
        assert dataset.num_operations == len(cfg.operations)
