"""Tests for dataset I/O: CSV event logs and JSONL/JSON persistence."""

import numpy as np
import pytest

from repro.data import (
    EventLogFormat,
    generate_dataset,
    jd_appliances_config,
    load_event_log,
    load_prepared_dataset,
    load_sessions_jsonl,
    load_trivago_log,
    prepare_dataset,
    save_prepared_dataset,
    save_sessions_jsonl,
)
from repro.data.schema import OperationVocab


class TestEventLogCSV:
    def _write_csv(self, tmp_path, rows, header="session_id,item_id,operation,timestamp"):
        path = tmp_path / "log.csv"
        path.write_text("\n".join([header] + rows) + "\n")
        return path

    def test_basic_load(self, tmp_path):
        path = self._write_csv(
            tmp_path,
            [
                "s1,10,click,3",
                "s1,10,cart,4",
                "s1,11,click,5",
                "s2,12,order,1",
            ],
        )
        sessions, vocab = load_event_log(path)
        assert len(sessions) == 2
        assert len(vocab) == 3
        s1 = sessions[0]
        assert [x.item for x in s1.interactions] == [10, 10, 11]

    def test_timestamp_ordering(self, tmp_path):
        path = self._write_csv(
            tmp_path,
            ["s1,20,click,9", "s1,10,click,1"],
        )
        sessions, _ = load_event_log(path)
        assert [x.item for x in sessions[0].interactions] == [10, 20]

    def test_fixed_vocab_drops_unknown_ops(self, tmp_path):
        path = self._write_csv(tmp_path, ["s1,10,click,1", "s1,11,weird,2"])
        vocab = OperationVocab(["click"])
        sessions, out_vocab = load_event_log(path, operations=vocab)
        assert out_vocab is vocab
        assert len(sessions[0]) == 1

    def test_custom_columns(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("sid;iid;act\nA;5;view\n")
        fmt = EventLogFormat(
            session_column="sid",
            item_column="iid",
            operation_column="act",
            timestamp_column=None,
            delimiter=";",
        )
        sessions, vocab = load_event_log(path, fmt=fmt)
        assert sessions[0].interactions[0].item == 5
        assert vocab.name_of(0) == "view"


class TestTrivagoCSV:
    def test_filters_non_item_references(self, tmp_path):
        path = tmp_path / "train.csv"
        path.write_text(
            "user_id,session_id,timestamp,step,action_type,reference\n"
            "u1,s1,1,1,search for destination,Paris\n"
            "u1,s1,2,2,interaction item image,101\n"
            "u1,s1,3,3,filter selection,cheap\n"
            "u1,s1,4,4,clickout item,102\n"
        )
        sessions, vocab = load_trivago_log(path)
        assert len(sessions) == 1
        items = [x.item for x in sessions[0].interactions]
        assert items == [101, 102]
        assert len(vocab) == 6  # the paper's six item-referencing actions


class TestJSONLRoundtrip:
    def test_sessions_roundtrip(self, tmp_path):
        cfg = jd_appliances_config()
        sessions = generate_dataset(cfg, 30, seed=3)
        path = tmp_path / "sessions.jsonl"
        save_sessions_jsonl(sessions, path)
        loaded = load_sessions_jsonl(path)
        assert len(loaded) == 30
        for a, b in zip(sessions, loaded):
            assert a.interactions == b.interactions
            assert a.session_id == b.session_id

    def test_prepared_dataset_roundtrip(self, tmp_path):
        cfg = jd_appliances_config()
        dataset = prepare_dataset(
            generate_dataset(cfg, 120, seed=4), cfg.operations, name="jd", min_support=2
        )
        path = tmp_path / "dataset.json"
        save_prepared_dataset(dataset, path)
        loaded = load_prepared_dataset(path)
        assert loaded.name == dataset.name
        assert loaded.num_items == dataset.num_items
        assert len(loaded.train) == len(dataset.train)
        a, b = dataset.train[0], loaded.train[0]
        assert a.macro_items == b.macro_items
        assert a.op_sequences == b.op_sequences
        assert a.target == b.target
        # Vocab mapping preserved.
        for dense in range(1, dataset.num_items + 1):
            assert dataset.vocab.decode(dense) == loaded.vocab.decode(dense)
