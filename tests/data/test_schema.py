"""Unit tests for the micro-behavior schema and merging."""

import pytest

from repro.data import (
    JD_OPERATIONS,
    TRIVAGO_OPERATIONS,
    Interaction,
    MacroSession,
    OperationVocab,
    Session,
    merge_successive,
)


class TestOperationVocab:
    def test_jd_has_ten_ops(self):
        assert len(JD_OPERATIONS) == 10

    def test_trivago_has_six_ops(self):
        assert len(TRIVAGO_OPERATIONS) == 6

    def test_paper_named_operations_present(self):
        # Sec. V-A1 names these explicitly.
        for name in ("SearchList2Product", "Detail_comments", "Order"):
            assert name in JD_OPERATIONS
        assert "interaction item image" in TRIVAGO_OPERATIONS

    def test_roundtrip(self):
        for i, name in enumerate(JD_OPERATIONS):
            assert JD_OPERATIONS.id_of(name) == i
            assert JD_OPERATIONS.name_of(i) == name

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            OperationVocab(["a", "a"])


class TestMergeSuccessive:
    def test_paper_fig3_example(self):
        # S^v = [v1, v2, v3, v2, v3, v4],
        # S^o = [(o1), (o1), (o1), (o1,o2), (o1,o2,o3), (o1)]
        micro = [
            (1, 0),
            (2, 0),
            (3, 0),
            (2, 0), (2, 1),
            (3, 0), (3, 1), (3, 2),
            (4, 0),
        ]
        session = Session([Interaction(v, o) for v, o in micro])
        macro = merge_successive(session)
        assert macro.macro_items == [1, 2, 3, 2, 3, 4]
        assert macro.op_sequences == [[0], [0], [0], [0, 1], [0, 1, 2], [0]]

    def test_single_item_multiple_ops(self):
        session = Session([Interaction(7, 0), Interaction(7, 1), Interaction(7, 2)])
        macro = merge_successive(session)
        assert macro.macro_items == [7]
        assert macro.op_sequences == [[0, 1, 2]]

    def test_revisit_creates_new_macro_step(self):
        session = Session([Interaction(1, 0), Interaction(2, 0), Interaction(1, 1)])
        macro = merge_successive(session)
        assert macro.macro_items == [1, 2, 1]

    def test_flat_micro_roundtrip(self):
        interactions = [Interaction(1, 0), Interaction(1, 2), Interaction(5, 1)]
        macro = merge_successive(Session(interactions))
        assert macro.flat_micro() == interactions

    def test_num_micro_behaviors(self):
        macro = merge_successive(
            Session([Interaction(1, 0), Interaction(1, 1), Interaction(2, 0)])
        )
        assert macro.num_micro_behaviors == 3


class TestMacroSession:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MacroSession([1, 2], [[0]])

    def test_len(self):
        assert len(MacroSession([1, 2], [[0], [1]])) == 2
