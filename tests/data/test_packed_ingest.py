"""Streaming JSONL/CSV → packed ingest: equality with the eager path.

``pack_sessions_stream`` must reproduce ``prepare_dataset`` +
``pack_dataset`` array-for-array under the same seed — same item-support
filter, same vocabulary, same split permutation, same example drops — while
only ever holding O(chunk) sessions as Python objects.
"""

import numpy as np
import pytest

from repro.data import (
    generate_dataset,
    iter_event_log,
    iter_sessions_jsonl,
    jd_appliances_config,
    load_sessions_jsonl,
    pack_dataset,
    pack_sessions_jsonl,
    pack_sessions_stream,
    prepare_dataset,
    save_sessions_jsonl,
    trivago_config,
)
from repro.data.packed import _ChunkedInt64

CSR_FIELDS = ("session_offsets", "macro_items", "op_offsets", "op_ids", "targets", "session_ids")


def assert_packed_equal(a, b):
    assert a.name == b.name
    assert np.array_equal(a.item_ids, b.item_ids)
    assert list(a.operations.names) == list(b.operations.names)
    for split_name in ("train", "validation", "test"):
        x, y = getattr(a, split_name), getattr(b, split_name)
        for field in CSR_FIELDS:
            assert np.array_equal(getattr(x, field), getattr(y, field)), (split_name, field)


@pytest.mark.parametrize("config_fn", [jd_appliances_config, trivago_config])
@pytest.mark.parametrize("min_support", [2, 5])
def test_stream_ingest_equals_eager_pipeline(tmp_path, config_fn, min_support):
    cfg = config_fn()
    sessions = generate_dataset(cfg, 400, seed=21)
    path = tmp_path / "sessions.jsonl"
    save_sessions_jsonl(sessions, path)

    eager = pack_dataset(
        prepare_dataset(
            sessions, cfg.operations, min_support=min_support, name=cfg.name, seed=3
        )
    )
    streamed = pack_sessions_jsonl(
        path, cfg.operations, min_support=min_support, name=cfg.name, seed=3
    )
    assert_packed_equal(eager, streamed)
    assert streamed.fingerprint == eager.fingerprint


def test_stream_ingest_fingerprint_skip(tmp_path):
    cfg = jd_appliances_config()
    sessions = generate_dataset(cfg, 100, seed=1)
    path = tmp_path / "sessions.jsonl"
    save_sessions_jsonl(sessions, path)
    packed = pack_sessions_jsonl(path, cfg.operations, min_support=2, fingerprint=False)
    assert packed.fingerprint == ""
    assert len(packed.train) > 0


def test_stream_ingest_rejects_bad_split():
    cfg = jd_appliances_config()
    with pytest.raises(ValueError, match="sum to 1"):
        pack_sessions_stream(lambda: [], cfg.operations, split=(0.5, 0.1, 0.1))


def test_iter_sessions_jsonl_matches_eager_loader(tmp_path):
    cfg = jd_appliances_config()
    sessions = generate_dataset(cfg, 50, seed=5)
    path = tmp_path / "sessions.jsonl"
    save_sessions_jsonl(sessions, path)
    eager = load_sessions_jsonl(path)
    streamed = list(iter_sessions_jsonl(path))
    assert len(eager) == len(streamed) == 50
    for a, b in zip(eager, streamed):
        assert a.session_id == b.session_id
        assert [(x.item, x.operation) for x in a.interactions] == [
            (x.item, x.operation) for x in b.interactions
        ]


def test_iter_sessions_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "sessions.jsonl"
    path.write_text(
        '{"session_id": 0, "events": [[1, 0], [2, 1]]}\n'
        "\n"
        '{"session_id": 1, "events": [[3, 2]]}\n'
    )
    sessions = list(iter_sessions_jsonl(path))
    assert [s.session_id for s in sessions] == [0, 1]


def test_iter_event_log_streams_contiguous_sessions(tmp_path):
    """On a session-contiguous, time-ordered CSV the streaming loader yields
    the same sessions the eager grouped loader builds."""
    from repro.data import load_event_log
    from repro.data.schema import OperationVocab

    vocab = OperationVocab(["click", "cart", "order"])
    rows = ["session_id,item_id,operation,timestamp"]
    rng = np.random.default_rng(0)
    ts = 0
    for key in ("s00", "s01", "s02", "s03"):  # sorted keys, contiguous blocks
        for _ in range(int(rng.integers(1, 6))):
            rows.append(f"{key},{int(rng.integers(1, 30))},{vocab.names[int(rng.integers(0, 3))]},{ts}")
            ts += 1
    path = tmp_path / "log.csv"
    path.write_text("\n".join(rows) + "\n")

    eager, _ = load_event_log(path, operations=vocab)
    streamed = list(iter_event_log(path, operations=vocab))
    assert len(eager) == len(streamed)
    for a, b in zip(eager, streamed):
        assert a.session_id == b.session_id
        assert [(x.item, x.operation) for x in a.interactions] == [
            (x.item, x.operation) for x in b.interactions
        ]


def test_iter_event_log_requires_vocab(tmp_path):
    path = tmp_path / "log.csv"
    path.write_text("session_id,item_id,operation,timestamp\n")
    with pytest.raises(ValueError, match="OperationVocab"):
        list(iter_event_log(path))


def test_chunked_column_bounds_python_heap():
    """The ingest's append column flushes to dense chunks at the threshold."""
    col = _ChunkedInt64(chunk=16)
    for i in range(100):
        col.append(i)
    assert len(col._pending) < 16  # everything else sits in dense chunks
    assert np.array_equal(col.array(), np.arange(100))
    col2 = _ChunkedInt64(chunk=8)
    col2.extend(range(20))
    col2.extend(range(20, 23))
    assert np.array_equal(col2.array(), np.arange(23))
    assert len(col2) == 23
    empty = _ChunkedInt64()
    assert empty.array().size == 0


def test_stream_ingest_drops_short_sessions_like_prepare(tmp_path):
    """Sessions that merge below 2 macro steps consume a permutation slot but
    emit no example — exactly like ``prepare_dataset``'s ``_to_example``."""
    cfg = jd_appliances_config()
    # High min_support forces aggressive filtering, producing many merged
    # sessions below the macro-length floor.
    sessions = generate_dataset(cfg, 300, seed=8)
    path = tmp_path / "sessions.jsonl"
    save_sessions_jsonl(sessions, path)
    eager = pack_dataset(
        prepare_dataset(sessions, cfg.operations, min_support=8, name="jd", seed=0)
    )
    streamed = pack_sessions_jsonl(path, cfg.operations, min_support=8, name="jd", seed=0)
    assert_packed_equal(eager, streamed)
