"""Tests for the dataset validator."""

import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.preprocess import ItemVocab, PreparedDataset
from repro.data.schema import JD_OPERATIONS, MacroSession
from repro.data.validation import validate_dataset


def make_dataset(examples):
    return PreparedDataset(
        name="toy",
        train=examples,
        validation=[],
        test=[],
        vocab=ItemVocab(list(range(100, 110))),  # 10 items -> dense 1..10
        operations=JD_OPERATIONS,
    )


class TestValidateDataset:
    def test_generated_data_is_valid(self):
        cfg = jd_appliances_config()
        ds = prepare_dataset(generate_dataset(cfg, 200, seed=9), cfg.operations, min_support=2)
        report = validate_dataset(ds)
        assert report.ok, report.summary()

    def test_detects_leakage(self):
        ds = make_dataset([MacroSession([1, 2], [[0], [1]], target=2, session_id=7)])
        report = validate_dataset(ds)
        assert not report.ok
        assert any("leakage" in i.problem for i in report.issues)
        assert report.issues[0].session_id == 7

    def test_detects_out_of_range_item(self):
        ds = make_dataset([MacroSession([99], [[0]], target=1)])
        assert any("item 99" in i.problem for i in validate_dataset(ds).issues)

    def test_detects_out_of_range_target(self):
        ds = make_dataset([MacroSession([1], [[0]], target=11)])
        assert any("target 11" in i.problem for i in validate_dataset(ds).issues)

    def test_detects_bad_operation(self):
        ds = make_dataset([MacroSession([1], [[77]], target=2)])
        assert any("operation 77" in i.problem for i in validate_dataset(ds).issues)

    def test_detects_unmerged_duplicates(self):
        ds = make_dataset([MacroSession([1, 1], [[0], [0]], target=2)])
        assert any("merge_successive" in i.problem for i in validate_dataset(ds).issues)

    def test_detects_empty_op_chain(self):
        ds = make_dataset([MacroSession([1], [[]], target=2)])
        assert any("empty operation chain" in i.problem for i in validate_dataset(ds).issues)

    def test_raise_if_invalid(self):
        ds = make_dataset([MacroSession([1, 2], [[0], [1]], target=2)])
        with pytest.raises(ValueError):
            validate_dataset(ds).raise_if_invalid()

    def test_summary_truncates(self):
        bad = [MacroSession([99], [[0]], target=1, session_id=i) for i in range(30)]
        report = validate_dataset(make_dataset(bad))
        assert "more" in report.summary()
