"""Regression pins for two DataLoader hot-path rewrites.

``padded_dims`` became a single pass over the op sequences (the old code
traversed every sequence twice); ``DataLoader.permutation`` lost a dead
re-allocation per fast-forwarded epoch. Both rewrites must be observationally
identical — these tests pin the outputs against naive references and against
literal golden orders so any future drift is loud.
"""

import numpy as np
import pytest

from repro.data import DataLoader, generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import padded_dims
from repro.data.schema import MacroSession


def naive_padded_dims(examples, max_ops_per_item=None):
    """The original two-traversal definition, kept as the oracle."""
    if not examples:
        raise ValueError("cannot collate an empty list of examples")
    n_max = max(len(ex) for ex in examples)
    k_nat = max(len(ops) for ex in examples for ops in ex.op_sequences)
    k_max = k_nat if max_ops_per_item is None else min(k_nat, max_ops_per_item)
    t_max = max(
        sum(min(len(ops), k_max) for ops in ex.op_sequences) for ex in examples
    )
    return n_max, k_max, t_max


def ragged_examples(seed, count=60):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        n = int(rng.integers(1, 9))
        items = [int(v) for v in rng.integers(1, 50, size=n)]
        ops = [
            [int(v) for v in rng.integers(0, 4, size=int(rng.integers(1, 12)))]
            for _ in range(n)
        ]
        out.append(
            MacroSession(session_id=i, macro_items=items, op_sequences=ops, target=1)
        )
    return out


@pytest.mark.parametrize("seed", [0, 3, 11])
@pytest.mark.parametrize("cap", [None, 1, 2, 5, 11, 100])
def test_padded_dims_matches_two_pass_oracle(seed, cap):
    examples = ragged_examples(seed)
    assert padded_dims(examples, cap) == naive_padded_dims(examples, cap)


def test_padded_dims_cap_above_and_below_natural_k():
    ex = MacroSession([1, 2, 3], [[0], [1, 2, 3, 0], [2, 2]], target=1)
    assert padded_dims([ex]) == (3, 4, 7)
    assert padded_dims([ex], max_ops_per_item=2) == (3, 2, 5)
    assert padded_dims([ex], max_ops_per_item=4) == (3, 4, 7)
    assert padded_dims([ex], max_ops_per_item=99) == (3, 4, 7)


def test_padded_dims_empty_raises():
    with pytest.raises(ValueError, match="empty"):
        padded_dims([])


# Literal golden orders for n=8: any change to the (seed, epoch) -> order
# map silently reshuffles every resumed training run, so pin the values.
_GOLDEN = {
    (0, 0): [2, 4, 3, 6, 5, 0, 1, 7],
    (0, 1): [6, 2, 7, 4, 5, 1, 0, 3],
    (0, 5): [4, 7, 6, 5, 0, 1, 2, 3],
    (7, 0): [0, 6, 7, 2, 4, 5, 1, 3],
    (7, 1): [7, 3, 6, 2, 0, 4, 1, 5],
    (7, 5): [7, 0, 1, 2, 4, 6, 3, 5],
}


def _loader(n=8, seed=0):
    examples = ragged_examples(1, count=n)
    return DataLoader(examples, batch_size=4, shuffle=True, seed=seed)


@pytest.mark.parametrize(("seed", "epoch"), sorted(_GOLDEN))
def test_permutation_golden_orders(seed, epoch):
    loader = _loader(seed=seed)
    assert loader.permutation(epoch).tolist() == _GOLDEN[(seed, epoch)]


@pytest.mark.parametrize("epoch", [0, 1, 5])
def test_permutation_matches_persistent_generator(epoch):
    """Fast-forwarded orders equal a generator that lived through every
    epoch — the contract that makes mid-training resume bit-exact."""
    loader = _loader(n=33, seed=4)
    rng = np.random.default_rng(4)
    for _ in range(epoch):
        rng.shuffle(np.arange(33))
    expected = np.arange(33)
    rng.shuffle(expected)
    assert np.array_equal(loader.permutation(epoch), expected)


def test_permutation_is_pure():
    loader = _loader(seed=2)
    a = loader.permutation(3)
    b = loader.permutation(3)
    assert np.array_equal(a, b)
    assert a is not b  # no shared mutable state between calls
    assert np.array_equal(np.sort(a), np.arange(8))


def test_permutation_no_shuffle_is_identity():
    examples = ragged_examples(1, count=6)
    loader = DataLoader(examples, batch_size=4, shuffle=False, seed=0)
    for epoch in (0, 4):
        assert np.array_equal(loader.permutation(epoch), np.arange(6))


def test_loader_epoch_orders_on_real_dataset():
    """End to end: batches drawn across epochs follow permutation(epoch)."""
    cfg = jd_appliances_config()
    ds = prepare_dataset(
        generate_dataset(cfg, 120, seed=2), cfg.operations, min_support=2, name="jd"
    )
    loader = DataLoader(ds.train, batch_size=16, shuffle=True, seed=9)
    for epoch in range(2):
        order = loader.permutation(epoch)
        got = [b.targets.copy() for b in loader]
        want = [
            np.asarray([ds.train[i].target for i in order[s : s + 16]])
            for s in range(0, len(order), 16)
        ]
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
