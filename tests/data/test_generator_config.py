"""Tests for generator configuration plumbing and custom personas."""

import numpy as np
import pytest

from repro.data import (
    GeneratorConfig,
    Persona,
    SyntheticSessionGenerator,
    jd_appliances_config,
    jd_computers_config,
    merge_successive,
    trivago_config,
)
from repro.data.schema import OperationVocab


class TestBuiltinConfigs:
    def test_num_operations(self):
        assert jd_appliances_config().num_operations == 10
        assert jd_computers_config().num_operations == 10
        assert trivago_config().num_operations == 6

    def test_trivago_exploration_knobs(self):
        cfg = trivago_config()
        assert cfg.repeat_prob == 0.0

    def test_jd_repeat_heavy(self):
        assert jd_appliances_config().repeat_prob > 0.3
        assert jd_computers_config().repeat_prob > 0.3

    def test_distinct_catalogue_sizes(self):
        assert jd_computers_config().num_items > jd_appliances_config().num_items


class TestCustomConfig:
    def test_minimal_custom_generator(self):
        ops = OperationVocab(["view", "buy"])
        persona = Persona(
            name="minimal",
            entry_probs={0: 1.0},
            transition={0: {1: 1.0}},
            stop_prob=0.5,
            max_ops_per_item=2,
        )
        cfg = GeneratorConfig(
            name="custom",
            operations=ops,
            personas=[persona],
            num_items=40,
            num_categories=4,
            targets_per_context=3,
            op_strength={1: 1.0},
        )
        gen = SyntheticSessionGenerator(cfg, seed=1)
        sessions = gen.generate(50)
        assert len(sessions) == 50
        for s in sessions[:10]:
            macro = merge_successive(s)
            assert len(macro) >= 2
            assert all(o in (0, 1) for ops_ in macro.op_sequences for o in ops_)

    def test_single_persona_pool_covers_category(self):
        ops = OperationVocab(["view"])
        persona = Persona(name="p", entry_probs={0: 1.0}, transition={}, stop_prob=1.0)
        cfg = GeneratorConfig(
            name="c", operations=ops, personas=[persona],
            num_items=20, num_categories=2, targets_per_context=5,
        )
        gen = SyntheticSessionGenerator(cfg, seed=0)
        for c in range(2):
            pool = gen.target_pool[(c, 0)]
            assert len(pool) == 5
            assert all(gen.category_of[i] == c for i in pool)

    def test_zero_noise_zero_repeat_targets_always_in_pool(self):
        ops = OperationVocab(["view"])
        persona = Persona(name="p", entry_probs={0: 1.0}, transition={}, stop_prob=1.0)
        cfg = GeneratorConfig(
            name="c", operations=ops, personas=[persona],
            num_items=30, num_categories=3, targets_per_context=4,
            noise_prob=0.0, repeat_prob=0.0, category_jump_prob=0.0,
        )
        gen = SyntheticSessionGenerator(cfg, seed=2)
        pools = {i for pool in gen.target_pool.values() for i in pool.tolist()}
        for s in gen.generate(80):
            target = merge_successive(s).macro_items[-1]
            assert target in pools
