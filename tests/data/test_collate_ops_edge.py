"""Extra collation edge cases found worth pinning during benchmarking."""

import numpy as np
import pytest

from repro.data import DataLoader, MacroSession, collate


class TestOpsTruncationEdges:
    def test_truncation_updates_last_op(self):
        """When the final chain is truncated, last_op must reflect the kept ops."""
        ex = MacroSession([1], [[0, 1, 2, 3, 4]], target=2)
        batch = collate([ex], max_ops_per_item=2)
        # Kept ops: [0, 1] -> shifted last is 2.
        assert batch.last_op[0] == 2

    def test_no_truncation_by_default_loader(self):
        loader = DataLoader(
            [MacroSession([1], [[0] * 10], target=2)], batch_size=1, max_ops_per_item=None
        )
        batch = next(iter(loader))
        assert batch.ops.shape[2] == 10

    def test_k_max_is_batch_local(self):
        batch = collate(
            [
                MacroSession([1], [[0]], target=2),
                MacroSession([3], [[0, 1, 2]], target=4),
            ]
        )
        assert batch.ops.shape[2] == 3

    def test_micro_len_after_truncation(self):
        batch = collate(
            [MacroSession([1, 2], [[0, 1, 2], [3]], target=4)], max_ops_per_item=2
        )
        assert batch.micro_lengths()[0] == 3  # 2 kept + 1

    def test_heterogeneous_batch_alignment(self):
        examples = [
            MacroSession([1, 2, 3], [[0], [1, 2], [3]], target=5),
            MacroSession([4], [[0, 1, 2, 3]], target=6),
        ]
        batch = collate(examples)
        # Row 0: 4 micro steps; row 1: 4 micro steps.
        assert batch.micro_lengths().tolist() == [4, 4]
        # The flattened item of each micro step matches its macro step.
        t0 = batch.micro_items[0, : 4].tolist()
        assert t0 == [1, 2, 2, 3]
