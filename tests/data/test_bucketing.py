"""Length bucketing: padded-dim quantization for compiled-step shape reuse.

``bucket_lengths=True`` rounds each collated batch's padded dims up the
``_BUCKET_LADDER`` so the compile engine sees a handful of repeating shape
keys instead of one per ragged batch. Padding is math-bearing (dropout
masks take the padded shape), so the flag is resume-critical — but it must
never touch *which* examples land in which batch.
"""

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import (
    _BUCKET_LADDER,
    DataLoader,
    bucketed_dims,
    padded_dims,
    quantize_length,
)


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=13), cfg.operations, min_support=2, name="jd"
    )


class TestQuantizeLength:
    def test_ladder_rungs_are_fixed_points(self):
        for rung in _BUCKET_LADDER:
            assert quantize_length(rung) == rung

    def test_rounds_up_to_next_rung(self):
        assert quantize_length(3) == 4
        assert quantize_length(5) == 6
        assert quantize_length(9) == 12
        assert quantize_length(17) == 24
        assert quantize_length(33) == 48
        assert quantize_length(49) == 64

    def test_beyond_ladder_rounds_to_top_multiples(self):
        top = _BUCKET_LADDER[-1]
        assert quantize_length(top + 1) == 2 * top
        assert quantize_length(2 * top) == 2 * top
        assert quantize_length(2 * top + 1) == 3 * top

    def test_non_positive_passthrough(self):
        assert quantize_length(0) == 0
        assert quantize_length(-2) == -2

    def test_never_shrinks(self):
        for value in range(1, 300):
            assert quantize_length(value) >= value

    def test_bucketed_dims_elementwise(self):
        assert bucketed_dims((3, 5, 70)) == (
            quantize_length(3),
            quantize_length(5),
            quantize_length(70),
        )


class TestLoaderBucketing:
    def test_permutation_untouched(self, dataset):
        plain = DataLoader(dataset.train, batch_size=32, seed=5)
        bucketed = DataLoader(dataset.train, batch_size=32, seed=5, bucket_lengths=True)
        for epoch in (0, 3):
            assert np.array_equal(plain.permutation(epoch), bucketed.permutation(epoch))

    def test_batches_carry_quantized_dims(self, dataset):
        loader = DataLoader(dataset.train, batch_size=32, bucket_lengths=True)
        for batch in loader:
            n = batch.items.shape[1]
            assert quantize_length(n) == n, f"unquantized item axis {n}"

    def test_bucketing_reduces_distinct_shapes(self, dataset):
        plain = {b.items.shape[1:] for b in DataLoader(dataset.train, batch_size=32)}
        bucketed = {
            b.items.shape[1:]
            for b in DataLoader(dataset.train, batch_size=32, bucket_lengths=True)
        }
        assert len(bucketed) <= len(plain)

    def test_padded_dims_for_matches_collate(self, dataset):
        loader = DataLoader(dataset.train, batch_size=32, bucket_lengths=True)
        chunk = dataset.train[:17]
        n, k, _ = loader.padded_dims_for(chunk)
        raw = padded_dims(chunk, loader.max_ops_per_item)
        assert (n, k) >= raw[:2]
        assert bucketed_dims(raw) == loader.padded_dims_for(chunk)

    def test_padding_columns_are_inert(self, dataset):
        """Extra padded columns are all-zero: masks hide them from the math."""
        plain = list(DataLoader(dataset.train, batch_size=32, seed=5))
        bucketed = list(
            DataLoader(dataset.train, batch_size=32, seed=5, bucket_lengths=True)
        )
        assert len(plain) == len(bucketed)
        for a, b in zip(plain, bucketed):
            n = a.items.shape[1]
            assert np.array_equal(b.items[:, :n], a.items)
            assert not b.items[:, n:].any()
            assert not b.item_mask[:, n:].any()
            assert np.array_equal(b.targets, a.targets)
