"""Unit tests for batch collation and the data loader."""

import numpy as np
import pytest

from repro.data import DataLoader, MacroSession, collate


def make_example(items, ops, target):
    return MacroSession(items, ops, target=target)


class TestCollate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            collate([])

    def test_missing_target_rejected(self):
        with pytest.raises(ValueError):
            collate([MacroSession([1], [[0]])])

    def test_padding_layout(self):
        batch = collate(
            [
                make_example([1, 2], [[0], [1, 2]], target=3),
                make_example([4], [[2]], target=5),
            ]
        )
        assert batch.items.shape == (2, 2)
        assert batch.items[1, 1] == 0
        assert batch.item_mask[1, 1] == 0.0
        # Operation ids are shifted by +1.
        assert batch.ops[0, 0, 0] == 1
        assert batch.ops[0, 1].tolist() == [2, 3]
        assert batch.targets.tolist() == [3, 5]

    def test_micro_flattening(self):
        batch = collate([make_example([1, 2], [[0], [1, 2]], target=3)])
        t = int(batch.micro_mask[0].sum())
        assert t == 3
        assert batch.micro_items[0, :t].tolist() == [1, 2, 2]
        assert batch.micro_ops[0, :t].tolist() == [1, 2, 3]

    def test_last_op(self):
        batch = collate([make_example([1, 2], [[0], [1, 4]], target=3)])
        assert batch.last_op[0] == 5  # shifted

    def test_target_classes_zero_based(self):
        batch = collate([make_example([1], [[0]], target=7)])
        assert batch.target_classes[0] == 6

    def test_ops_truncation(self):
        batch = collate(
            [make_example([1], [[0, 1, 2, 3, 4, 5, 6]], target=2)], max_ops_per_item=3
        )
        assert batch.ops.shape[2] == 3
        assert int(batch.micro_mask.sum()) == 3

    def test_lengths(self):
        batch = collate(
            [
                make_example([1, 2, 3], [[0], [0], [0]], target=4),
                make_example([5], [[0, 1]], target=6),
            ]
        )
        assert batch.macro_lengths().tolist() == [3, 1]
        assert batch.micro_lengths().tolist() == [3, 2]


class TestDataLoader:
    examples = [make_example([i + 1], [[0]], target=i + 2) for i in range(10)]

    def test_batch_count(self):
        loader = DataLoader(self.examples, batch_size=4)
        assert len(loader) == 3
        sizes = [b.batch_size for b in loader]
        assert sizes == [4, 4, 2]

    def test_shuffle_deterministic_per_seed(self):
        a = [b.targets.tolist() for b in DataLoader(self.examples, batch_size=4, shuffle=True, seed=1)]
        b = [b.targets.tolist() for b in DataLoader(self.examples, batch_size=4, shuffle=True, seed=1)]
        assert a == b

    def test_shuffle_changes_order_across_epochs(self):
        loader = DataLoader(self.examples, batch_size=10, shuffle=True, seed=1)
        first = next(iter(loader)).targets.tolist()
        second = next(iter(loader)).targets.tolist()
        assert sorted(first) == sorted(second)
        assert first != second

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(self.examples, batch_size=3)
        flat = [t for b in loader for t in b.targets.tolist()]
        assert flat == [ex.target for ex in self.examples]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self.examples, batch_size=0)
