"""Invariants of the contrastive session-view augmentations."""

from collections import Counter

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.augment import AugmentConfig, augment_batch, augment_views, view_generator
from repro.data.dataset import DataLoader, SessionBatch


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=7), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture(scope="module")
def batch(dataset):
    return next(iter(DataLoader(dataset.train, batch_size=32, shuffle=True, seed=5)))


def views(dataset, batch, **kw):
    defaults = dict(num_ops=dataset.num_operations, seed=5, epoch=0, batch_index=0)
    defaults.update(kw)
    return augment_views(batch, **defaults)


def row_items(batch, b):
    length = int(batch.item_mask[b].sum())
    return [int(batch.items[b, i]) for i in range(length)]


class TestShapeAndContentInvariants:
    def test_padded_shapes_are_preserved(self, dataset, batch):
        for view in views(dataset, batch):
            for field in ("items", "item_mask", "ops", "op_mask",
                          "micro_items", "micro_ops", "micro_mask", "last_op"):
                assert getattr(view, field).shape == getattr(batch, field).shape, field
                assert getattr(view, field).dtype == getattr(batch, field).dtype, field

    def test_item_multiset_per_row_is_preserved(self, dataset, batch):
        for view in views(dataset, batch):
            for b in range(batch.batch_size):
                assert Counter(row_items(view, b)) == Counter(row_items(batch, b))

    def test_targets_pass_through_untouched(self, dataset, batch):
        for view in views(dataset, batch):
            assert np.array_equal(view.targets, batch.targets)
            assert view.targets is not batch.targets  # fresh array, no aliasing

    def test_micro_mask_is_left_contiguous(self, dataset, batch):
        for view in views(dataset, batch):
            for b in range(batch.batch_size):
                mask = view.micro_mask[b]
                n = int(mask.sum())
                assert mask[:n].all() and not mask[n:].any()
                assert n >= 1  # dropout keeps at least the entry op per item

    def test_last_op_matches_final_micro_op(self, dataset, batch):
        for view in views(dataset, batch):
            for b in range(batch.batch_size):
                n = int(view.micro_mask[b].sum())
                assert view.last_op[b] == view.micro_ops[b, n - 1]

    def test_dropout_only_shrinks_micro_rows(self, dataset, batch):
        for view in views(dataset, batch):
            for b in range(batch.batch_size):
                assert int(view.micro_mask[b].sum()) <= int(batch.micro_mask[b].sum())


class TestDeterminism:
    def test_same_stream_key_rebuilds_the_same_view(self, dataset, batch):
        a, b2 = views(dataset, batch)[0], views(dataset, batch)[0]
        for field in ("items", "ops", "micro_ops", "micro_mask", "last_op"):
            assert np.array_equal(getattr(a, field), getattr(b2, field)), field

    def test_the_two_views_differ(self, dataset, batch):
        a, b2 = views(dataset, batch)
        assert any(
            not np.array_equal(getattr(a, f), getattr(b2, f))
            for f in ("items", "ops", "micro_ops", "micro_mask")
        )

    def test_stream_key_components_all_matter(self, dataset, batch):
        base = views(dataset, batch)[0]
        for kw in ({"seed": 6}, {"epoch": 1}, {"batch_index": 1}, {"shard": 1}, {"retry": 1}):
            other = views(dataset, batch, **kw)[0]
            assert any(
                not np.array_equal(getattr(base, f), getattr(other, f))
                for f in ("items", "ops", "micro_ops", "micro_mask")
            ), kw

    def test_view_generator_is_pure(self):
        a = view_generator(5, 0, 0).integers(1 << 30, size=8)
        b = view_generator(5, 0, 0).integers(1 << 30, size=8)
        assert np.array_equal(a, b)


class TestConfigKnobs:
    def test_identity_config_reproduces_the_batch(self, dataset, batch):
        """With every probability at zero the view is the batch, bit for bit."""
        off = AugmentConfig(op_dropout=0.0, op_substitution=0.0, span_reorder=0.0)
        rng = view_generator(5, 0, 0)
        fields = augment_batch(batch, rng, dataset.num_operations, off)
        view = SessionBatch(**fields)
        for field in ("items", "item_mask", "ops", "op_mask",
                      "micro_items", "micro_ops", "micro_mask", "last_op", "targets"):
            assert np.array_equal(getattr(view, field), getattr(batch, field)), field

    def test_substituted_ops_stay_in_vocabulary(self, dataset, batch):
        hot = AugmentConfig(op_dropout=0.5, op_substitution=0.9, span_reorder=0.9)
        rng = view_generator(5, 0, 0)
        view = SessionBatch(**augment_batch(batch, rng, dataset.num_operations, hot))
        valid = view.micro_ops[view.micro_mask > 0]
        assert valid.min() >= 1 and valid.max() <= dataset.num_operations
