"""Unit tests for the synthetic session generators."""

import numpy as np
import pytest

from repro.data import (
    SyntheticSessionGenerator,
    generate_dataset,
    jd_appliances_config,
    jd_computers_config,
    merge_successive,
    trivago_config,
)


@pytest.fixture(scope="module")
def jd_sessions():
    return generate_dataset(jd_appliances_config(), 300, seed=1)


@pytest.fixture(scope="module")
def trivago_sessions():
    return generate_dataset(trivago_config(), 300, seed=1)


class TestDeterminism:
    def test_same_seed_same_sessions(self):
        cfg = jd_appliances_config()
        a = generate_dataset(cfg, 20, seed=5)
        b = generate_dataset(cfg, 20, seed=5)
        for s1, s2 in zip(a, b):
            assert s1.interactions == s2.interactions

    def test_different_seed_differs(self):
        cfg = jd_appliances_config()
        a = generate_dataset(cfg, 20, seed=5)
        b = generate_dataset(cfg, 20, seed=6)
        assert any(s1.interactions != s2.interactions for s1, s2 in zip(a, b))


class TestSessionStructure:
    def test_operations_in_range(self, jd_sessions):
        num_ops = len(jd_appliances_config().operations)
        for s in jd_sessions:
            assert all(0 <= x.operation < num_ops for x in s.interactions)

    def test_items_in_range(self, jd_sessions):
        num_items = jd_appliances_config().num_items
        for s in jd_sessions:
            assert all(0 <= x.item < num_items for x in s.interactions)

    def test_macro_length_bounds(self, jd_sessions):
        cfg = jd_appliances_config()
        for s in jd_sessions:
            macro = merge_successive(s)
            # +1 for the appended target item; successive same-item draws can
            # merge, so the lower bound is 2 (one input step + target).
            assert 2 <= len(macro) <= cfg.max_macro_len + 1

    def test_no_leakage_last_two_items_differ(self, jd_sessions):
        for s in jd_sessions:
            macro = merge_successive(s)
            assert macro.macro_items[-1] != macro.macro_items[-2]

    def test_sessions_contain_revisits(self, jd_sessions):
        """The multigraph structure requires repeated non-adjacent items."""
        revisits = sum(
            len(merge_successive(s).macro_items)
            != len(set(merge_successive(s).macro_items))
            for s in jd_sessions
        )
        assert revisits > 10


class TestRegimes:
    def test_jd_has_repeat_targets(self, jd_sessions):
        repeats = 0
        for s in jd_sessions:
            macro = merge_successive(s)
            repeats += macro.macro_items[-1] in macro.macro_items[:-1]
        assert repeats / len(jd_sessions) > 0.2  # repeat-heavy regime

    def test_trivago_targets_mostly_unseen(self, trivago_sessions):
        repeats = 0
        for s in trivago_sessions:
            macro = merge_successive(s)
            repeats += macro.macro_items[-1] in macro.macro_items[:-1]
        assert repeats / len(trivago_sessions) < 0.1  # exploration regime

    def test_trivago_uses_six_ops(self, trivago_sessions):
        ops = {x.operation for s in trivago_sessions for x in s.interactions}
        assert ops <= set(range(6))
        assert len(ops) >= 5


class TestTargetPools:
    def test_pools_disjoint_across_personas(self):
        gen = SyntheticSessionGenerator(jd_appliances_config(), seed=0)
        num_personas = len(gen.config.personas)
        for c in range(gen.config.num_categories):
            pools = [set(gen.target_pool[(c, p)].tolist()) for p in range(num_personas)]
            for i in range(num_personas):
                for j in range(i + 1, num_personas):
                    assert not pools[i] & pools[j]

    def test_pools_within_category(self):
        gen = SyntheticSessionGenerator(jd_computers_config(), seed=0)
        for (c, _p), pool in gen.target_pool.items():
            assert all(gen.category_of[item] == c for item in pool)


class TestPersonas:
    def test_jd_researcher_and_skeptic_share_entry_marginals(self):
        personas = {p.name: p for p in jd_appliances_config().personas}
        assert personas["researcher"].entry_probs == personas["skeptic"].entry_probs

    def test_transition_probs_normalized_draws(self):
        # _sample_ops must never raise even for long chains.
        gen = SyntheticSessionGenerator(jd_appliances_config(), seed=3)
        for persona in gen.config.personas:
            for _ in range(50):
                ops = gen._sample_ops(persona)
                assert 1 <= len(ops) <= persona.max_ops_per_item
