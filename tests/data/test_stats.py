"""Tests for dataset statistics (the Table II analogue)."""

import pytest

from repro.data import (
    Interaction,
    MacroSession,
    PreparedDataset,
    Session,
    compute_stats,
    generate_dataset,
    jd_appliances_config,
    prepare_dataset,
)
from repro.data.preprocess import ItemVocab
from repro.data.schema import JD_OPERATIONS


class TestComputeStats:
    def test_counts_all_splits(self):
        vocab = ItemVocab([1, 2, 3])
        ex = MacroSession([1, 2], [[0], [1, 2]], target=3)
        ds = PreparedDataset(
            name="toy",
            train=[ex],
            validation=[ex],
            test=[ex, ex],
            vocab=vocab,
            operations=JD_OPERATIONS,
        )
        stats = compute_stats(ds)
        assert stats.num_train == 1
        assert stats.num_validation == 1
        assert stats.num_test == 2
        assert stats.num_items == 3
        # 3 micro-behaviors per example x 4 examples.
        assert stats.num_micro_behaviors == 12
        assert stats.avg_macro_len == pytest.approx(2.0)
        assert stats.avg_ops_per_item == pytest.approx(1.5)

    def test_as_row_keys(self):
        cfg = jd_appliances_config()
        ds = prepare_dataset(generate_dataset(cfg, 120, seed=5), cfg.operations, min_support=2)
        row = compute_stats(ds).as_row()
        for key in ("# train", "# validation", "# test", "# items", "# micro-behavior"):
            assert key in row

    def test_empty_dataset_safe(self):
        ds = PreparedDataset(
            name="empty",
            train=[],
            validation=[],
            test=[],
            vocab=ItemVocab([]),
            operations=JD_OPERATIONS,
        )
        stats = compute_stats(ds)
        assert stats.avg_macro_len == 0
        assert stats.avg_ops_per_item == 0
