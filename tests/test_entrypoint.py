"""The installed ``repro`` console script must resolve to a real callable."""

import pathlib
import tomllib


def project_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent


def test_console_script_declared():
    pyproject = tomllib.loads((project_root() / "pyproject.toml").read_text())
    scripts = pyproject["project"]["scripts"]
    assert scripts["repro"] == "repro.cli:main"


def test_console_script_target_resolves():
    """Import exactly what the entry point declares and check it's callable."""
    import importlib

    pyproject = tomllib.loads((project_root() / "pyproject.toml").read_text())
    module_name, _, attr = pyproject["project"]["scripts"]["repro"].partition(":")
    module = importlib.import_module(module_name)
    target = getattr(module, attr)
    assert callable(target)


def test_entry_point_dispatches(capsys):
    """Calling the declared target behaves like the CLI (here: `models`)."""
    from repro.cli import main

    assert main(["models"]) == 0
    assert "EMBSR" in capsys.readouterr().out
