"""Tests for the post-hoc analysis utilities."""

import numpy as np
import pytest

from repro.data import MacroSession
from repro.eval import (
    improvement_table,
    repeat_vs_explore_breakdown,
    session_length_breakdown,
)


class TestImprovementTable:
    measured = {
        "A": {"H@5": 10.0, "M@5": 5.0},
        "B": {"H@5": 20.0, "M@5": 4.0},
        "C": {"H@5": 22.0, "M@5": 6.0},
    }

    def test_positive_when_leading(self):
        imp = improvement_table(self.measured, "C", metrics=("H@5", "M@5"))
        assert imp["H@5"] == pytest.approx((22 - 20) / 20 * 100)
        assert imp["M@5"] == pytest.approx((6 - 5) / 5 * 100)

    def test_negative_when_trailing(self):
        imp = improvement_table(self.measured, "A", metrics=("H@5",))
        assert imp["H@5"] < 0

    def test_zero_baseline_handled(self):
        measured = {"A": {"H@5": 1.0}, "B": {"H@5": 0.0}}
        imp = improvement_table(measured, "A", metrics=("H@5",))
        assert imp["H@5"] == float("inf")


def _fake_examples_scores(lengths, repeats, num_items=30, seed=0):
    rng = np.random.default_rng(seed)
    examples, targets = [], []
    for length, repeat in zip(lengths, repeats):
        items = list(rng.choice(np.arange(1, num_items + 1), size=length, replace=False))
        target = items[0] if repeat else int(rng.integers(1, num_items + 1))
        if not repeat:
            while target in items:
                target = int(rng.integers(1, num_items + 1))
        examples.append(MacroSession(items, [[0]] * length, target=target))
        targets.append(target - 1)
    scores = rng.normal(size=(len(examples), num_items))
    return examples, scores, np.array(targets)


class TestSessionLengthBreakdown:
    def test_buckets_cover_all_sessions(self):
        examples, scores, targets = _fake_examples_scores(
            lengths=[1, 2, 3, 5, 8, 9], repeats=[False] * 6
        )
        buckets = session_length_breakdown(examples, scores, targets, edges=(2, 4, 7))
        assert sum(b.count for b in buckets) == len(examples)

    def test_bucket_labels(self):
        examples, scores, targets = _fake_examples_scores([1, 5, 10], [False] * 3)
        buckets = session_length_breakdown(examples, scores, targets, edges=(2, 4, 7))
        labels = [b.label for b in buckets]
        assert labels[0].startswith("len 1-")
        assert labels[-1].startswith("len >")

    def test_misaligned_inputs_rejected(self):
        examples, scores, targets = _fake_examples_scores([2, 3], [False, False])
        with pytest.raises(ValueError):
            session_length_breakdown(examples[:1], scores, targets)


class TestRepeatVsExplore:
    def test_split_counts(self):
        examples, scores, targets = _fake_examples_scores(
            lengths=[3, 3, 3, 3], repeats=[True, True, False, False]
        )
        buckets = repeat_vs_explore_breakdown(examples, scores, targets)
        by_label = {b.label: b for b in buckets}
        assert by_label["repeat (target in session)"].count == 2
        assert by_label["explore (target unseen)"].count == 2

    def test_oracle_repeat_scorer_wins_on_repeats(self):
        examples, scores, targets = _fake_examples_scores(
            lengths=[4] * 20, repeats=[True] * 10 + [False] * 10, seed=3
        )
        # Score session items highly (an S-POP-like oracle).
        for i, ex in enumerate(examples):
            scores[i, np.array(ex.macro_items) - 1] += 10.0
        buckets = repeat_vs_explore_breakdown(examples, scores, targets)
        by_label = {b.label: b for b in buckets}
        assert (
            by_label["repeat (target in session)"].metrics["H@10"]
            > by_label["explore (target unseen)"].metrics["H@10"]
        )
