"""Edge-case tests for the training loop."""

import numpy as np
import pytest

from repro.core import EMBSRConfig, build_sgnn_self
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import TrainConfig, Trainer


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 250, seed=91), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture(scope="module")
def model_config(dataset):
    return EMBSRConfig(num_items=dataset.num_items, num_ops=dataset.num_operations, dim=8, seed=0)


class TestTrainerEdges:
    def test_zero_epochs_leaves_model_untouched(self, dataset, model_config):
        model = build_sgnn_self(model_config)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        Trainer(model, TrainConfig(epochs=0, seed=1)).fit(dataset)
        after = model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_single_epoch_history(self, dataset, model_config):
        trainer = Trainer(build_sgnn_self(model_config), TrainConfig(epochs=1, seed=1))
        trainer.fit(dataset)
        assert len(trainer.history) == 1
        assert trainer.history[0].epoch == 0

    def test_training_is_deterministic_per_seed(self, dataset, model_config):
        def run():
            trainer = Trainer(build_sgnn_self(model_config), TrainConfig(epochs=2, seed=7))
            trainer.fit(dataset)
            return [h.train_loss for h in trainer.history]

        assert run() == run()

    def test_different_seed_changes_trajectory(self, dataset, model_config):
        def run(seed):
            trainer = Trainer(build_sgnn_self(model_config), TrainConfig(epochs=1, seed=seed))
            trainer.fit(dataset)
            return trainer.history[0].train_loss

        assert run(1) != run(2)

    def test_evaluate_on_empty_ks(self, dataset, model_config):
        trainer = Trainer(build_sgnn_self(model_config), TrainConfig(epochs=1, seed=1))
        trainer.fit(dataset)
        assert trainer.evaluate(dataset.test, ks=()) == {}

    def test_predict_in_eval_mode(self, dataset, model_config):
        """predict() must disable dropout: repeated calls agree."""
        config = model_config.variant(dropout=0.5)
        trainer = Trainer(build_sgnn_self(config), TrainConfig(epochs=1, seed=1))
        trainer.fit(dataset)
        s1, _ = trainer.predict(dataset.test[:20])
        s2, _ = trainer.predict(dataset.test[:20])
        assert np.allclose(s1, s2)
