"""Tests for the grid-search protocol."""

import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import ExperimentConfig, grid_search
from repro.eval.tuning import PAPER_DROPOUT_GRID, PAPER_LR_GRID


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 300, seed=71), cfg.operations, min_support=2, name="jd"
    )


class TestGridSearch:
    def test_paper_grids_match_section_va4(self):
        assert PAPER_LR_GRID == (0.001, 0.003, 0.005, 0.008, 0.01)
        assert PAPER_DROPOUT_GRID == (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

    def test_evaluates_every_point(self, dataset):
        result = grid_search(
            dataset,
            "STAMP",
            ExperimentConfig(dim=8, epochs=1, seed=0),
            lrs=(0.005, 0.01),
            dropouts=(0.0, 0.1),
        )
        assert len(result.points) == 4
        combos = {(p.lr, p.dropout) for p in result.points}
        assert combos == {(0.005, 0.0), (0.005, 0.1), (0.01, 0.0), (0.01, 0.1)}

    def test_best_is_max(self, dataset):
        result = grid_search(
            dataset,
            "STAMP",
            ExperimentConfig(dim=8, epochs=1, seed=0),
            lrs=(0.005, 0.01),
            dropouts=(0.1,),
        )
        assert result.best.valid_metric == max(p.valid_metric for p in result.points)

    def test_works_for_nonneural(self, dataset):
        result = grid_search(
            dataset,
            "S-POP",
            ExperimentConfig(dim=8, epochs=1, seed=0),
            lrs=(0.005,),
            dropouts=(0.1,),
        )
        assert len(result.points) == 1
