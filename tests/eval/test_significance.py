"""Tests for the Wilcoxon signed-rank significance machinery."""

import numpy as np
import pytest

from repro.eval import wilcoxon_reciprocal_ranks


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def make_scores(rng, n=200, items=50):
    return rng.normal(size=(n, items)), rng.integers(0, items, size=n)


class TestWilcoxon:
    def test_identical_systems_not_significant(self, rng):
        scores, targets = make_scores(rng)
        result = wilcoxon_reciprocal_ranks(scores, scores, targets)
        assert result.p_value == 1.0
        assert not result.significant
        assert result.mean_improvement == 0.0

    def test_clear_improvement_significant(self, rng):
        scores_b, targets = make_scores(rng)
        scores_a = scores_b.copy()
        # System A places the target first for most sessions.
        boost = rng.random(len(targets)) < 0.8
        scores_a[np.arange(len(targets))[boost], targets[boost]] += 100.0
        result = wilcoxon_reciprocal_ranks(scores_a, scores_b, targets)
        assert result.significant
        assert result.mean_improvement > 0

    def test_degradation_not_significant_for_greater_alternative(self, rng):
        scores_a, targets = make_scores(rng)
        scores_b = scores_a.copy()
        boost = rng.random(len(targets)) < 0.8
        scores_b[np.arange(len(targets))[boost], targets[boost]] += 100.0
        result = wilcoxon_reciprocal_ranks(scores_a, scores_b, targets)
        assert not result.significant
        assert result.mean_improvement < 0

    def test_str_contains_verdict(self, rng):
        scores, targets = make_scores(rng)
        assert "not significant" in str(wilcoxon_reciprocal_ranks(scores, scores, targets))
