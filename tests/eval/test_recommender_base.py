"""Tests for the Recommender base interface and top-K extraction."""

import numpy as np
import pytest

from repro.data import MacroSession, collate
from repro.eval import Recommender


class Scripted(Recommender):
    """Scores equal to fixed per-item values."""

    name = "scripted"

    def __init__(self, values):
        self.values = np.asarray(values, dtype=float)

    def fit(self, dataset):
        return self

    def score_batch(self, batch):
        return np.tile(self.values, (batch.batch_size, 1))


class TestTopK:
    batch = collate([MacroSession([1], [[0]], target=2)])

    def test_descending_order(self):
        rec = Scripted([0.1, 0.9, 0.5, 0.7])
        top = rec.top_k(self.batch, k=4)[0]
        assert top.tolist() == [2, 4, 3, 1]  # dense ids are 1-based

    def test_k_truncation(self):
        rec = Scripted([0.1, 0.9, 0.5, 0.7])
        assert rec.top_k(self.batch, k=2).shape == (1, 2)

    def test_stable_on_ties(self):
        rec = Scripted([0.5, 0.5, 0.5])
        top = rec.top_k(self.batch, k=3)[0]
        assert top.tolist() == [1, 2, 3]  # stable argsort keeps index order

    def test_abstract_instantiation_blocked(self):
        with pytest.raises(TypeError):
            Recommender()
