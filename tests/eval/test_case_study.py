"""Tests for the Fig. 7 case-study tooling."""

import numpy as np
import pytest

from repro.data import MacroSession, generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import SessionBatch
from repro.eval import Recommender, find_interesting_session, run_case_study


class FixedScoreRecommender(Recommender):
    """Deterministic scores for testing: item ``best`` always wins."""

    def __init__(self, num_items: int, best: int):
        self.name = f"fixed-{best}"
        self.num_items = num_items
        self.best = best

    def fit(self, dataset):
        return self

    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        scores = np.zeros((batch.batch_size, self.num_items))
        scores[:, self.best - 1] = 1.0
        return scores


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 300, seed=51), cfg.operations, min_support=2, name="jd"
    )


class TestRunCaseStudy:
    def test_rows_per_system(self, dataset):
        example = dataset.test[0]
        systems = {
            "a": FixedScoreRecommender(dataset.num_items, best=example.target),
            "b": FixedScoreRecommender(
                dataset.num_items, best=(example.target % dataset.num_items) + 1
            ),
        }
        rows = run_case_study(example, systems, k=5)
        assert [r.model for r in rows] == ["a", "b"]
        by = {r.model: r for r in rows}
        assert by["a"].target_rank == 1 and by["a"].hit_at_k
        assert by["a"].top_items[0] == example.target

    def test_top_items_are_one_based(self, dataset):
        example = dataset.test[0]
        rec = FixedScoreRecommender(dataset.num_items, best=1)
        rows = run_case_study(example, {"r": rec}, k=3)
        assert rows[0].top_items[0] == 1


class TestFindInterestingSession:
    def test_finds_flip_case(self, dataset):
        # "macro" never ranks targets; "micro" always ranks them first.
        target0 = dataset.test[0].target
        wrong = (target0 % dataset.num_items) + 1
        systems = {
            "macro": FixedScoreRecommender(dataset.num_items, best=wrong),
            "micro": FixedScoreRecommender(dataset.num_items, best=target0),
        }
        found = find_interesting_session(
            dataset, systems, macro_only="macro", full_model="micro", k=5
        )
        assert found is not None
        assert found.target == target0  # the first session with that target

    def test_returns_none_when_no_flip(self, dataset):
        rec = FixedScoreRecommender(dataset.num_items, best=1)
        found = find_interesting_session(
            dataset, {"macro": rec, "micro": rec}, macro_only="macro", full_model="micro"
        )
        # Identical systems can never flip.
        assert found is None or found.target == 1
