"""Tests for ExperimentConfig -> TrainConfig plumbing."""

from repro.eval import ExperimentConfig


class TestExperimentConfig:
    def test_train_config_inherits_fields(self):
        cfg = ExperimentConfig(epochs=7, batch_size=32, lr=0.008, patience=2, seed=9)
        tc = cfg.train_config()
        assert tc.epochs == 7
        assert tc.batch_size == 32
        assert tc.lr == 0.008
        assert tc.patience == 2
        assert tc.seed == 9

    def test_defaults_match_paper_protocol(self):
        cfg = ExperimentConfig()
        # K values reported in Table III.
        assert cfg.ks == (5, 10, 20)
        # NISER / SGNN-HN normalized-softmax scale (Sec. V-A4: w_k = 12).
        assert cfg.w_k == 12.0

    def test_selection_metric_default(self):
        assert ExperimentConfig().train_config().selection_metric == "M@20"
