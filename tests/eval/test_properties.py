"""Property-based tests for the evaluation metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.eval import evaluate_scores, hit_rate, mrr, ranks_of_targets

settings.register_profile("repro-eval", deadline=None, max_examples=50)
settings.load_profile("repro-eval")


# Scores are rounded to 3 decimals so that score differences survive the
# floating-point translation in test_score_translation_invariance (adding a
# constant would otherwise absorb sub-epsilon differences and create ties).
score_matrices = st.integers(2, 40).flatmap(
    lambda items: st.tuples(
        hnp.arrays(
            np.float64,
            st.integers(1, 30).map(lambda b: (b, items)),
            elements=st.floats(-10, 10, allow_nan=False, width=64),
        ).map(lambda a: np.round(a, 3)),
        st.just(items),
    )
)


class TestMetricProperties:
    @given(score_matrices, st.data())
    def test_ranks_in_valid_range(self, scores_items, data):
        scores, items = scores_items
        targets = data.draw(
            hnp.arrays(np.int64, scores.shape[0], elements=st.integers(0, items - 1))
        )
        ranks = ranks_of_targets(scores, targets)
        assert (ranks >= 1).all() and (ranks <= items).all()

    @given(score_matrices, st.data())
    def test_hit_rate_monotone_in_k(self, scores_items, data):
        scores, items = scores_items
        targets = data.draw(
            hnp.arrays(np.int64, scores.shape[0], elements=st.integers(0, items - 1))
        )
        ranks = ranks_of_targets(scores, targets)
        values = [hit_rate(ranks, k) for k in range(1, items + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == 100.0  # K = |items| always hits

    @given(score_matrices, st.data())
    def test_mrr_bounded_by_hit(self, scores_items, data):
        scores, items = scores_items
        targets = data.draw(
            hnp.arrays(np.int64, scores.shape[0], elements=st.integers(0, items - 1))
        )
        ranks = ranks_of_targets(scores, targets)
        for k in (1, min(5, items), items):
            assert mrr(ranks, k) <= hit_rate(ranks, k) + 1e-12

    @given(score_matrices, st.data())
    def test_score_translation_invariance(self, scores_items, data):
        """Adding a constant to every score must not change any metric."""
        scores, items = scores_items
        targets = data.draw(
            hnp.arrays(np.int64, scores.shape[0], elements=st.integers(0, items - 1))
        )
        a = evaluate_scores(scores, targets, ks=(1, 2))
        b = evaluate_scores(scores + 7.5, targets, ks=(1, 2))
        assert a == b

    @given(score_matrices, st.data())
    def test_boosting_target_never_hurts(self, scores_items, data):
        scores, items = scores_items
        targets = data.draw(
            hnp.arrays(np.int64, scores.shape[0], elements=st.integers(0, items - 1))
        )
        boosted = scores.copy()
        boosted[np.arange(len(targets)), targets] += 100.0
        base = evaluate_scores(scores, targets, ks=(5,))
        best = evaluate_scores(boosted, targets, ks=(5,))
        assert best["H@5"] >= base["H@5"]
        assert best["M@5"] >= base["M@5"]
