"""Tests for paper-style table formatting."""

import pytest

from repro.eval.reporting import format_results_markdown

MEASURED = {
    "SGNN-HN": {"H@5": 34.80, "M@5": 21.00},
    "MKM-SR": {"H@5": 33.82, "M@5": 20.73},
    "EMBSR": {"H@5": 37.34, "M@5": 23.58},
}


class TestFormatResultsMarkdown:
    def test_best_bolded(self):
        out = format_results_markdown(MEASURED, metrics=("H@5", "M@5"))
        assert "**37.34**" in out
        assert "**23.58**" in out

    def test_second_best_underlined(self):
        out = format_results_markdown(MEASURED, metrics=("H@5", "M@5"))
        assert "_34.80_" in out
        assert "_21.00_" in out

    def test_improvement_row(self):
        out = format_results_markdown(MEASURED, metrics=("H@5",))
        expected = (37.34 - 34.80) / 34.80 * 100
        assert f"{expected:+.2f}%" in out

    def test_no_improvement_row_without_highlight(self):
        out = format_results_markdown(MEASURED, metrics=("H@5",), highlight_system=None)
        assert "Imp." not in out

    def test_missing_metric_rejected(self):
        with pytest.raises(KeyError):
            format_results_markdown(MEASURED, metrics=("H@99",))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_results_markdown({})

    def test_single_system(self):
        out = format_results_markdown({"EMBSR": {"H@5": 1.0}}, metrics=("H@5",))
        assert "**1.00**" in out
