"""Tests for the training loop, early stopping, and model selection."""

import numpy as np
import pytest

from repro.core import EMBSRConfig, build_sgnn_self
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import NeuralRecommender, TrainConfig, Trainer
from repro.registry import spec_for


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 500, seed=31), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture(scope="module")
def model_config(dataset):
    return EMBSRConfig(num_items=dataset.num_items, num_ops=dataset.num_operations, dim=12, seed=0)


class TestTrainer:
    def test_loss_decreases(self, dataset, model_config):
        trainer = Trainer(build_sgnn_self(model_config), TrainConfig(epochs=3, lr=0.01, seed=1))
        trainer.fit(dataset)
        losses = [h.train_loss for h in trainer.history]
        assert losses[-1] < losses[0]

    def test_history_records_epochs(self, dataset, model_config):
        trainer = Trainer(build_sgnn_self(model_config), TrainConfig(epochs=2, seed=1))
        trainer.fit(dataset)
        assert len(trainer.history) == 2

    def test_early_stopping(self, dataset, model_config):
        cfg = TrainConfig(epochs=50, lr=0.01, patience=1, seed=1)
        trainer = Trainer(build_sgnn_self(model_config), cfg)
        trainer.fit(dataset)
        assert len(trainer.history) < 50

    def test_best_model_restored(self, dataset, model_config):
        """After fit, the model must reproduce the best validation metric."""
        cfg = TrainConfig(epochs=4, lr=0.01, patience=10, seed=1)
        trainer = Trainer(build_sgnn_self(model_config), cfg)
        trainer.fit(dataset)
        best = max(h.valid_metric for h in trainer.history)
        current = trainer.evaluate(dataset.validation, batch_size=64)[cfg.selection_metric]
        assert current == pytest.approx(best, abs=1e-9)

    def test_better_than_random(self, dataset, model_config):
        trainer = Trainer(build_sgnn_self(model_config), TrainConfig(epochs=4, lr=0.01, seed=1))
        trainer.fit(dataset)
        metrics = trainer.evaluate(dataset.test)
        random_h20 = 20 / dataset.num_items * 100
        assert metrics["H@20"] > 2 * random_h20

    def test_predict_shapes(self, dataset, model_config):
        trainer = Trainer(build_sgnn_self(model_config), TrainConfig(epochs=1, seed=1))
        trainer.fit(dataset)
        scores, targets = trainer.predict(dataset.test[:10])
        assert scores.shape == (10, dataset.num_items)
        assert targets.shape == (10,)


class TestNeuralRecommender:
    @staticmethod
    def _spec(dataset):
        return spec_for(
            "SGNN-Self",
            num_items=dataset.num_items,
            num_ops=dataset.num_operations,
            dim=12,
            seed=0,
        )

    def test_fit_then_score(self, dataset):
        rec = NeuralRecommender(self._spec(dataset), TrainConfig(epochs=1, seed=1))
        rec.fit(dataset)
        from repro.data import DataLoader

        batch = next(iter(DataLoader(dataset.test, batch_size=4)))
        assert rec.score_batch(batch).shape == (4, dataset.num_items)

    def test_unfitted_raises(self, dataset):
        rec = NeuralRecommender(self._spec(dataset))
        with pytest.raises(RuntimeError):
            _ = rec.model

    def test_top_k(self, dataset):
        rec = NeuralRecommender(self._spec(dataset), TrainConfig(epochs=1, seed=1))
        rec.fit(dataset)
        from repro.data import DataLoader

        batch = next(iter(DataLoader(dataset.test, batch_size=4)))
        top = rec.top_k(batch, k=5)
        assert top.shape == (4, 5)
        assert (top >= 1).all() and (top <= dataset.num_items).all()
        # Best-first ordering.
        scores = rec.score_batch(batch)
        for b in range(4):
            vals = scores[b, top[b] - 1]
            assert (np.diff(vals) <= 1e-12).all()
