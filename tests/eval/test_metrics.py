"""Unit tests for HR@K / MRR@K (Eqs. 21-22)."""

import numpy as np
import pytest

from repro.eval import evaluate_scores, hit_rate, mrr, ranks_of_targets


class TestRanks:
    def test_basic_ranking(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        assert ranks_of_targets(scores, np.array([1]))[0] == 1
        assert ranks_of_targets(scores, np.array([2]))[0] == 2
        assert ranks_of_targets(scores, np.array([0]))[0] == 3

    def test_ties_pessimistic(self):
        scores = np.array([[0.5, 0.5, 0.5]])
        # All tied: the target counts every tied competitor as ahead.
        assert ranks_of_targets(scores, np.array([0]))[0] == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ranks_of_targets(np.zeros(5), np.array([0]))

    def test_batch(self):
        scores = np.array([[3.0, 2.0, 1.0], [1.0, 2.0, 3.0]])
        ranks = ranks_of_targets(scores, np.array([0, 0]))
        assert ranks.tolist() == [1, 3]


class TestHitRate:
    def test_all_hits(self):
        assert hit_rate(np.array([1, 2, 3]), k=3) == 100.0

    def test_partial(self):
        assert hit_rate(np.array([1, 5, 10]), k=5) == pytest.approx(200 / 3)

    def test_none(self):
        assert hit_rate(np.array([21, 30]), k=20) == 0.0


class TestMRR:
    def test_rank_one(self):
        assert mrr(np.array([1, 1]), k=20) == 100.0

    def test_beyond_k_zeroed(self):
        assert mrr(np.array([21]), k=20) == 0.0

    def test_mixed(self):
        # ranks 1 and 4 -> (1 + 0.25) / 2 = 62.5%
        assert mrr(np.array([1, 4]), k=10) == pytest.approx(62.5)

    def test_h1_equals_m1(self):
        """The paper notes H@1 == M@1 (Supp. Table III)."""
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(50, 30))
        targets = rng.integers(0, 30, size=50)
        ranks = ranks_of_targets(scores, targets)
        assert hit_rate(ranks, 1) == pytest.approx(mrr(ranks, 1))


class TestEvaluateScores:
    def test_keys(self):
        rng = np.random.default_rng(1)
        out = evaluate_scores(rng.normal(size=(10, 20)), rng.integers(0, 20, 10), ks=(5, 10))
        assert set(out) == {"H@5", "M@5", "H@10", "M@10"}

    def test_monotone_in_k(self):
        rng = np.random.default_rng(2)
        out = evaluate_scores(rng.normal(size=(100, 50)), rng.integers(0, 50, 100))
        assert out["H@5"] <= out["H@10"] <= out["H@20"]
        assert out["M@5"] <= out["M@10"] <= out["M@20"]

    def test_hit_bounds_mrr(self):
        rng = np.random.default_rng(3)
        out = evaluate_scores(rng.normal(size=(100, 50)), rng.integers(0, 50, 100))
        for k in (5, 10, 20):
            assert out[f"M@{k}"] <= out[f"H@{k}"]

    def test_perfect_predictor(self):
        targets = np.arange(10)
        scores = np.eye(10)
        out = evaluate_scores(scores, targets, ks=(1,))
        assert out["H@1"] == 100.0 and out["M@1"] == 100.0
