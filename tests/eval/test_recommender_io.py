"""Round-trip tests for Recommender.save / Recommender.load."""

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import collate
from repro.eval import ExperimentConfig, ExperimentRunner


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=3), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture(scope="module")
def runner(dataset):
    return ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=1, seed=0))


class TestNeuralRoundTrip:
    def test_save_load_preserves_scores(self, dataset, runner, tmp_path):
        fitted = runner.run("STAMP").recommender
        path = tmp_path / "stamp.npz"
        fitted.save(path)
        assert path.exists()

        # A fresh, *unfitted* instance restores from disk — no training.
        restored = runner.build("STAMP").load(dataset, path)
        batch = collate(dataset.test[:16])
        np.testing.assert_allclose(
            fitted.score_batch(batch), restored.score_batch(batch), rtol=1e-6
        )

    def test_load_rejects_architecture_mismatch(self, dataset, runner, tmp_path):
        fitted = runner.run("STAMP").recommender
        path = tmp_path / "stamp.npz"
        fitted.save(path)
        other = ExperimentRunner(dataset, ExperimentConfig(dim=16, epochs=0, seed=0))
        with pytest.raises((KeyError, ValueError)):
            other.build("STAMP").load(dataset, path)

    def test_save_before_fit_fails(self, runner, tmp_path):
        with pytest.raises(RuntimeError):
            runner.build("STAMP").save(tmp_path / "nope.npz")


class TestNonParametric:
    def test_spop_opts_out(self, dataset, tmp_path):
        from repro.baselines import SPop

        spop = SPop().fit(dataset)
        with pytest.raises(NotImplementedError):
            spop.save(tmp_path / "spop.npz")
        with pytest.raises(NotImplementedError):
            SPop().load(dataset, tmp_path / "spop.npz")
