"""Tests for the experiment runner and the model registry."""

import numpy as np
import pytest

from repro.eval import MODEL_NAMES, ExperimentConfig, ExperimentRunner
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset


@pytest.fixture(scope="module")
def runner():
    cfg = jd_appliances_config()
    dataset = prepare_dataset(
        generate_dataset(cfg, 400, seed=41), cfg.operations, min_support=2, name="jd"
    )
    return ExperimentRunner(dataset, ExperimentConfig(dim=12, epochs=1, seed=0))


class TestRegistry:
    def test_table3_has_twelve_systems(self):
        assert len(MODEL_NAMES) == 12
        assert MODEL_NAMES[-1] == "EMBSR"

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_all_names_buildable(self, runner, name):
        assert runner.build(name) is not None

    def test_variant_names_buildable(self, runner):
        for name in ("EMBSR-NS", "EMBSR-NG", "EMBSR-NF", "SGNN-Self", "SGNN-Dyadic"):
            assert runner.build(name) is not None

    def test_fixed_beta_names(self, runner):
        rec = runner.build("EMBSR-beta=0.4")
        assert rec is not None

    def test_unknown_name_raises(self, runner):
        with pytest.raises(KeyError):
            runner.build("GPT-7")


class TestRun:
    def test_run_produces_metrics(self, runner):
        result = runner.run("S-POP")
        assert set(result.metrics) == {"H@5", "M@5", "H@10", "M@10", "H@20", "M@20"}
        assert result.scores.shape[0] == len(runner.dataset.test)

    def test_results_cached(self, runner):
        first = runner.run("S-POP")
        assert runner.run("S-POP") is first

    def test_neural_run(self, runner):
        result = runner.run("STAMP")
        assert np.isfinite(result.scores).all()

    def test_metric_table(self, runner):
        runner.run("S-POP")
        table = runner.metric_table(["S-POP", "NOT-RUN"])
        assert "S-POP" in table and "NOT-RUN" not in table
