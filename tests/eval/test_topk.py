"""Equivalence tests: top_k_indices vs. the full stable argsort."""

import numpy as np
import pytest

from repro.eval.topk import top_k_indices


def reference(scores, k):
    scores = np.asarray(scores)
    if scores.ndim == 1:
        return np.argsort(-scores, kind="stable")[:k]
    return np.argsort(-scores, axis=1, kind="stable")[:, :k]


class TestExactEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 5, 19, 20, 25])
    def test_random_matrix(self, k):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(17, 20))
        np.testing.assert_array_equal(top_k_indices(scores, k), reference(scores, k))

    @pytest.mark.parametrize("k", [1, 3, 7, 50])
    def test_heavy_ties(self, k):
        """Quantized scores: many exact ties straddling the k-th value."""
        rng = np.random.default_rng(1)
        scores = rng.integers(0, 4, size=(23, 50)).astype(float)
        np.testing.assert_array_equal(top_k_indices(scores, k), reference(scores, k))

    def test_all_equal(self):
        scores = np.ones((5, 12))
        # Stable tie-break: the first k indices, in order.
        np.testing.assert_array_equal(
            top_k_indices(scores, 4), np.tile(np.arange(4), (5, 1))
        )

    def test_with_neg_inf(self):
        """exclude_seen masks scores to -inf; ordering must survive."""
        rng = np.random.default_rng(2)
        scores = rng.normal(size=(9, 30))
        scores[rng.random(size=scores.shape) < 0.4] = -np.inf
        for k in (1, 5, 29):
            np.testing.assert_array_equal(top_k_indices(scores, k), reference(scores, k))

    def test_1d_vector(self):
        rng = np.random.default_rng(3)
        scores = rng.integers(0, 3, size=40).astype(float)
        result = top_k_indices(scores, 6)
        assert result.shape == (6,)
        np.testing.assert_array_equal(result, reference(scores, 6))

    def test_float32(self):
        rng = np.random.default_rng(4)
        scores = rng.normal(size=(8, 25)).astype(np.float32)
        np.testing.assert_array_equal(top_k_indices(scores, 5), reference(scores, 5))


class TestEdges:
    def test_k_zero_and_negative(self):
        scores = np.arange(12.0).reshape(3, 4)
        assert top_k_indices(scores, 0).shape == (3, 0)
        assert top_k_indices(scores, -2).shape == (3, 0)
        assert top_k_indices(scores[0], 0).shape == (0,)

    def test_k_equals_n(self):
        scores = np.array([[3.0, 1.0, 3.0, 2.0]])
        np.testing.assert_array_equal(top_k_indices(scores, 4), [[0, 2, 3, 1]])

    def test_k_exceeds_n(self):
        scores = np.array([[1.0, 5.0, 5.0]])
        np.testing.assert_array_equal(top_k_indices(scores, 10), [[1, 2, 0]])

    def test_single_column(self):
        scores = np.array([[7.0], [3.0]])
        np.testing.assert_array_equal(top_k_indices(scores, 1), [[0], [0]])

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros((2, 2, 2)), 1)


class TestCallers:
    def test_recommender_top_k_unchanged(self):
        """Recommender.top_k still returns 1-based dense ids, best first."""
        from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
        from repro.data.dataset import collate
        from repro.eval import ExperimentConfig, ExperimentRunner

        cfg = jd_appliances_config()
        dataset = prepare_dataset(
            generate_dataset(cfg, 120, seed=9), cfg.operations, min_support=2, name="jd"
        )
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0, seed=0))
        rec = runner.run("STAMP").recommender
        batch = collate(dataset.test[:6])
        top = rec.top_k(batch, k=5)
        expected = np.argsort(-rec.score_batch(batch), axis=1, kind="stable")[:, :5] + 1
        np.testing.assert_array_equal(top, expected)
