"""Sticky canary routing: determinism, convergence, reassignment."""

import pytest

from repro.deploy import CanaryRouter


class TestStickiness:
    def test_same_session_same_arm_for_fixed_seed_and_pct(self):
        router = CanaryRouter(10.0, seed=7)
        for sid in (f"session-{i}" for i in range(50)):
            first = router.is_candidate(sid)
            for _ in range(20):  # request order must not matter
                assert router.is_candidate(sid) == first

    def test_assignment_survives_router_reconstruction(self):
        a = CanaryRouter(25.0, seed=3)
        b = CanaryRouter(25.0, seed=3)  # e.g. after a process restart
        for i in range(200):
            sid = f"s{i}"
            assert a.is_candidate(sid) == b.is_candidate(sid)

    def test_different_seed_samples_a_different_cohort(self):
        a = CanaryRouter(20.0, seed=0)
        b = CanaryRouter(20.0, seed=1)
        sids = [f"s{i}" for i in range(2000)]
        assert [a.is_candidate(s) for s in sids] != [b.is_candidate(s) for s in sids]


class TestFractionConvergence:
    @pytest.mark.parametrize("pct", [5.0, 10.0, 25.0, 50.0])
    def test_candidate_fraction_converges_to_pct(self, pct):
        router = CanaryRouter(pct, seed=11)
        n = 20_000
        hits = sum(router.is_candidate(f"session-{i}") for i in range(n))
        assert abs(hits / n - pct / 100.0) < 0.01  # CRC32 is uniform enough

    def test_extremes(self):
        none = CanaryRouter(0.0)
        everyone = CanaryRouter(100.0)
        for i in range(100):
            assert not none.is_candidate(f"s{i}")
            assert everyone.is_candidate(f"s{i}")

    def test_pct_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CanaryRouter(-1.0)
        with pytest.raises(ValueError):
            CanaryRouter(100.5)


class TestReassignment:
    def test_promote_and_rollback_reassign_every_session(self, artifact_path):
        """After promote (or rollback) no session routes to a candidate —
        reassignment is total, not incremental."""
        from repro.deploy import DeploymentConfig, DeploymentManager
        from repro.serve import RecommenderService

        service = RecommenderService.from_artifact(artifact_path)
        manager = DeploymentManager(
            service, config=DeploymentConfig(canary_pct=50.0, auto_decide=False)
        )
        manager.stage(artifact_path, wait=True)
        sids = [f"s{i}" for i in range(300)]
        arms = {sid: manager.arm_for(sid) for sid in sids}
        assert any(a is manager.candidate for a in arms.values())
        assert any(a is manager.incumbent for a in arms.values())

        promoted = manager.promote()
        assert all(manager.arm_for(sid) is promoted for sid in sids)
        assert manager.router is None

        manager.stage(artifact_path, wait=True)
        manager.rollback()
        assert all(manager.arm_for(sid) is manager.incumbent for sid in sids)
