"""ShadowComparator: prequential window, verdicts, thresholds."""

import pytest

from repro.deploy import ShadowComparator


def feed(comp, n, inc=True, cand=True):
    for _ in range(n):
        comp.observe(inc, cand)


class TestWindow:
    def test_no_verdict_below_min_observations(self):
        comp = ShadowComparator(min_observations=10, window=20)
        feed(comp, 9, inc=True, cand=False)
        assert comp.verdict() is None

    def test_rates_and_delta(self):
        comp = ShadowComparator(min_observations=2, window=100)
        feed(comp, 30, inc=True, cand=True)
        feed(comp, 10, inc=True, cand=False)
        assert comp.incumbent_hr == 1.0
        assert comp.candidate_hr == pytest.approx(0.75)
        assert comp.delta == pytest.approx(-0.25)

    def test_window_slides_old_outcomes_out(self):
        comp = ShadowComparator(min_observations=5, window=10)
        feed(comp, 10, inc=True, cand=False)  # terrible start
        feed(comp, 10, inc=True, cand=True)   # recovery fills the window
        assert comp.candidate_hr == 1.0
        assert comp.verdict() == "promote"

    def test_lifetime_observations_not_bounded_by_window(self):
        comp = ShadowComparator(min_observations=1, window=5)
        feed(comp, 25)
        assert comp.observations == 25
        assert comp.stats()["window_filled"] == 5


class TestVerdict:
    def test_regression_beyond_threshold_votes_rollback(self):
        comp = ShadowComparator(min_observations=10, window=50, regression_threshold=0.10)
        feed(comp, 40, inc=True, cand=False)
        assert comp.verdict() == "rollback"

    def test_no_worse_candidate_votes_promote(self):
        comp = ShadowComparator(min_observations=10, window=50, regression_threshold=0.10)
        feed(comp, 40, inc=True, cand=True)
        assert comp.verdict() == "promote"

    def test_regression_within_threshold_still_promotes(self):
        comp = ShadowComparator(min_observations=10, window=100, regression_threshold=0.20)
        feed(comp, 90, inc=True, cand=True)
        feed(comp, 10, inc=True, cand=False)  # 10% drop < 20% threshold
        assert comp.verdict() == "promote"

    def test_better_candidate_promotes(self):
        comp = ShadowComparator(min_observations=10, window=50)
        feed(comp, 40, inc=False, cand=True)
        assert comp.verdict() == "promote"


class TestValidation:
    def test_window_smaller_than_min_observations_rejected(self):
        with pytest.raises(ValueError):
            ShadowComparator(min_observations=50, window=10)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ShadowComparator(regression_threshold=-0.1)

    def test_stats_is_json_friendly(self):
        import json

        comp = ShadowComparator()
        feed(comp, 3)
        json.dumps(comp.stats())
