"""DeploymentStore lineage + param_hash bit-identity semantics."""

import json

import numpy as np
import pytest

from repro.deploy import DeploymentStore, param_hash
from repro.reliability import SimulatedCrash, armed, crashing


class TestParamHash:
    def test_identical_weights_hash_equal(self):
        w = {"a": np.arange(6, dtype=np.float64).reshape(2, 3), "b": np.ones(4)}
        assert param_hash(w) == param_hash({k: v.copy() for k, v in w.items()})

    def test_one_bit_flip_changes_hash(self):
        w = {"a": np.zeros(8)}
        flipped = {"a": w["a"].copy()}
        flipped["a"][3] = 1e-300  # smallest perturbation imaginable
        assert param_hash(w) != param_hash(flipped)

    def test_dtype_and_shape_are_identity(self):
        a = {"w": np.zeros(4, dtype=np.float64)}
        b = {"w": np.zeros(4, dtype=np.float32)}
        c = {"w": np.zeros((2, 2), dtype=np.float64)}
        assert len({param_hash(a), param_hash(b), param_hash(c)}) == 3

    def test_name_order_does_not_matter(self):
        w1 = dict([("a", np.ones(2)), ("b", np.zeros(2))])
        w2 = dict([("b", np.zeros(2)), ("a", np.ones(2))])
        assert param_hash(w1) == param_hash(w2)


class TestStore:
    def test_record_and_next_version(self, tmp_path):
        store = DeploymentStore(tmp_path)
        assert store.next_version() == 1
        store.record(1, tmp_path / "v0001.npz", "h1", status="promoted")
        store.record(2, tmp_path / "v0002.npz", "h2", parent=1)
        assert store.next_version() == 3
        assert [r["version"] for r in store.lineage()] == [1, 2]
        assert store.lineage()[1]["parent"] == 1

    def test_promotion_supersedes_previous(self, tmp_path):
        store = DeploymentStore(tmp_path)
        store.record(1, "a", "h1", status="promoted")
        store.record(2, "b", "h2", parent=1, status="candidate")
        store.set_status(2, "promoted")
        statuses = {r["version"]: r["status"] for r in store.lineage()}
        assert statuses == {1: "superseded", 2: "promoted"}
        assert store.latest_promoted()["version"] == 2

    def test_latest_promoted_ignores_rolled_back(self, tmp_path):
        store = DeploymentStore(tmp_path)
        store.record(1, "a", "h1", status="promoted")
        store.record(2, "b", "h2", parent=1, status="candidate")
        store.set_status(2, "rolled_back")
        assert store.latest_promoted()["version"] == 1

    def test_empty_store(self, tmp_path):
        store = DeploymentStore(tmp_path / "fresh")
        assert store.lineage() == []
        assert store.latest_promoted() is None

    def test_lineage_written_atomically(self, tmp_path):
        """A crash mid-write leaves the previous lineage intact, no debris."""
        store = DeploymentStore(tmp_path)
        store.record(1, "a", "h1", status="promoted")
        with armed("serialization.mid_write", crashing()):
            with pytest.raises(SimulatedCrash):
                store.record(2, "b", "h2")
        survived = json.loads(store.lineage_path.read_text())
        assert [r["version"] for r in survived] == [1]
        assert not list(tmp_path.glob("*.tmp"))

    def test_artifact_path_layout(self, tmp_path):
        store = DeploymentStore(tmp_path)
        assert store.artifact_path(7).name == "v0007.npz"
