"""Gateway × deployment: admin plane, cache-scope safety, shadow decisions.

The acceptance-criteria pair lives here: an identical-weights candidate
is promoted and a corrupted candidate (shuffled embedding rows) is
demoted, both *deterministically*, driven through the real gateway
ingest/recommend path. The never-serve-a-demoted-generation property is
asserted via the cache scope: rankings cached while a session was on the
candidate arm must not be served after rollback.
"""

import itertools
import json
import urllib.error
import urllib.request

import pytest

from repro.artifacts import load_artifact
from repro.deploy import (
    DeploymentConfig,
    DeploymentError,
    DeploymentManager,
    DeploymentStore,
    EventRingBuffer,
)
from repro.reliability import armed, crashing, raising
from repro.serve import RecommenderService
from repro.serving import GatewayConfig, ServingGateway

from .conftest import RAW_IDS, corrupt_weights

SWAP_FAILPOINTS = ["deploy.swap.load", "deploy.swap.warm", "deploy.swap.flip", "deploy.swap.commit"]


@pytest.fixture()
def stack(artifact_path, tmp_path):
    """(gateway, manager, store) with the batcher running."""
    store = DeploymentStore(tmp_path / "deploy")
    service = RecommenderService.from_artifact(
        artifact_path, event_buffer=EventRingBuffer()
    )
    manager = DeploymentManager(
        service,
        store=store,
        config=DeploymentConfig(
            canary_pct=50.0,
            shadow_sample_pct=100.0,
            min_observations=5,
            window=50,
        ),
        incumbent_path=str(artifact_path),
    )
    gateway = ServingGateway(service, GatewayConfig(max_wait_ms=2.0), deployment=manager)
    gateway.batcher.start()
    try:
        yield gateway, manager, store
    finally:
        gateway.batcher.stop()


def drive(gateway, sid):
    gateway.ingest(sid, 1005, 1)
    gateway.ingest(sid, 1010, 2)


def follow_recommendations(gateway, manager, rounds, sessions=6):
    """Self-fulfilling stream: each session goes where the gateway points.

    Every follow-up event is a macro transition whose target is the top
    pick of the arm serving that session, so shadow evaluation compares
    the generations on their own online traffic.
    """
    sids = itertools.cycle([f"s{i}" for i in range(sessions)])
    for _ in range(rounds):
        sid = next(sids)
        top = gateway.recommend(sid, k=3)["items"]
        gateway.ingest(sid, top[0] if top else 1005, 1)
        if manager.candidate is None:
            return


class TestAdminPlane:
    def test_gateway_without_deployment_refuses(self, artifact_path):
        service = RecommenderService.from_artifact(artifact_path)
        gateway = ServingGateway(service, GatewayConfig(max_wait_ms=2.0))
        with pytest.raises(DeploymentError):
            gateway.deploy_status()
        with pytest.raises(DeploymentError):
            gateway.deploy_promote()

    def test_stage_promote_lifecycle_and_metrics(self, stack, make_artifact):
        gateway, manager, _ = stack
        out = gateway.deploy_stage(str(make_artifact("v2.npz")))
        assert out["staged"] is True
        assert out["candidate"]["version"] == 2
        assert gateway.health()["deployment"]["candidate"] == 2

        out = gateway.deploy_promote(reason="test")
        assert out["promoted"] == 2
        assert gateway.health()["deployment"] == {
            "generation": 1,
            "incumbent": 2,
            "candidate": None,
        }
        snap = gateway.registry.snapshot()
        assert snap["deploy_swaps_total"] == 1
        assert snap["deploy_promotes_total"] == 1
        assert snap["deploy_generation"] == 1
        assert snap["deploy_candidate_active"] == 0

    def test_promote_without_candidate_is_conflict(self, stack):
        gateway, _, _ = stack
        with pytest.raises(DeploymentError):
            gateway.deploy_promote()
        with pytest.raises(DeploymentError):
            gateway.deploy_rollback()

    def test_failed_stage_reports_unstaged(self, stack, make_artifact):
        gateway, manager, _ = stack
        bad = make_artifact("bad.npz", item_ids=[i + 1 for i in RAW_IDS])
        out = gateway.deploy_stage(str(bad))
        assert out["staged"] is False
        assert manager.candidate is None
        assert gateway.registry.snapshot()["deploy_swap_failures_total"] == 1


class TestCacheScopeSafety:
    """A demoted generation's rankings must never be served again."""

    def test_candidate_cache_entries_die_on_rollback(self, stack, make_artifact, base_weights):
        gateway, manager, _ = stack
        corrupted = make_artifact("v2.npz", weights=corrupt_weights(base_weights))
        gateway.deploy_stage(str(corrupted), canary_pct=100.0)

        sid = "canary-user"
        drive(gateway, sid)
        first = gateway.recommend(sid, k=5)
        assert first["source"] == "model" and manager.arm_for(sid) is manager.candidate
        assert gateway.recommend(sid, k=5)["cached"] is True  # cached under v2 scope

        gateway.deploy_rollback(reason="test")
        after = gateway.recommend(sid, k=5)
        assert after["cached"] is False  # v2-scoped entry is unservable
        assert after["items"] != first["items"]  # incumbent ranks differently
        again = gateway.recommend(sid, k=5)
        assert again["cached"] is True and again["items"] == after["items"]

    def test_promote_also_retires_incumbent_scoped_entries(self, stack, make_artifact, base_weights):
        gateway, manager, _ = stack
        sid = "incumbent-user"
        drive(gateway, sid)
        before = gateway.recommend(sid, k=5)
        assert gateway.recommend(sid, k=5)["cached"] is True

        corrupted = make_artifact("v2.npz", weights=corrupt_weights(base_weights))
        gateway.deploy_stage(str(corrupted), canary_pct=0.0)
        gateway.deploy_promote(reason="test")
        after = gateway.recommend(sid, k=5)
        assert after["cached"] is False
        assert after["items"] != before["items"]


class TestShadowDecisions:
    """Acceptance criteria: deterministic promote / rollback from shadow HR."""

    def test_identical_weights_candidate_promotes(self, stack, make_artifact):
        gateway, manager, _ = stack
        for i in range(6):
            drive(gateway, f"s{i}")
        assert gateway.deploy_stage(str(make_artifact("v2.npz")))["staged"]

        follow_recommendations(gateway, manager, rounds=60)
        events = [e["event"] for e in manager.timeline]
        assert "promoted" in events
        assert manager.generation == 1
        assert manager.incumbent.version == 2
        snap = gateway.registry.snapshot()
        assert snap["deploy_promotes_total"] == 1
        assert snap["shadow_observations"] >= manager.config.min_observations

    def test_corrupted_candidate_rolls_back(self, stack, make_artifact, base_weights):
        gateway, manager, _ = stack
        for i in range(6):
            drive(gateway, f"s{i}")
        incumbent_hash = manager.incumbent.param_hash
        corrupted = make_artifact("v2.npz", weights=corrupt_weights(base_weights))
        assert gateway.deploy_stage(str(corrupted), canary_pct=0.0)["staged"]

        follow_recommendations(gateway, manager, rounds=80)
        events = [e["event"] for e in manager.timeline]
        assert "rolled_back" in events and "promoted" not in events
        assert manager.generation == 0
        assert manager.incumbent.param_hash == incumbent_hash  # bit-identical
        assert gateway.registry.snapshot()["deploy_rollbacks_total"] == 1

    def test_decisions_are_deterministic_across_replays(
        self, artifact_path, make_artifact, base_weights, tmp_path
    ):
        """Same stream twice → byte-identical timeline of decisions."""
        corrupted_weights = corrupt_weights(base_weights)

        def run(run_dir):
            store = DeploymentStore(run_dir / "deploy")
            service = RecommenderService.from_artifact(artifact_path)
            manager = DeploymentManager(
                service,
                store=store,
                config=DeploymentConfig(
                    canary_pct=0.0, shadow_sample_pct=100.0, min_observations=5, window=50
                ),
                incumbent_path=str(artifact_path),
            )
            gateway = ServingGateway(
                service, GatewayConfig(max_wait_ms=2.0), deployment=manager
            )
            gateway.batcher.start()
            try:
                for i in range(6):
                    drive(gateway, f"s{i}")
                corrupted = make_artifact(f"{run_dir.name}.npz", weights=corrupted_weights)
                gateway.deploy_stage(str(corrupted))
                follow_recommendations(gateway, manager, rounds=80)
            finally:
                gateway.batcher.stop()
            return [e["event"] for e in manager.timeline if e["event"] != "shadow_eval"]

        assert run(tmp_path / "a") == run(tmp_path / "b")


class TestChaos:
    """Faults in the deploy path must never surface as request failures."""

    def test_canary_assign_faults_never_fail_requests(self, stack, make_artifact):
        gateway, manager, _ = stack
        gateway.deploy_stage(str(make_artifact("v2.npz")))
        with armed("deploy.canary.assign", raising(RuntimeError("assign blew up")), every=5):
            for i in range(50):  # 20% of assignments fault; retries absorb all
                sid = f"chaos-{i}"
                drive(gateway, sid)
                result = gateway.recommend(sid, k=5)
                assert result["items"], result

    @pytest.mark.parametrize("site", SWAP_FAILPOINTS)
    def test_swap_crash_mid_traffic_keeps_serving(self, site, stack, make_artifact):
        gateway, manager, _ = stack
        sid = "steady-user"
        drive(gateway, sid)
        before = gateway.recommend(sid, k=5)["items"]

        with armed(site, crashing()):
            gateway.deploy_stage(str(make_artifact("v2.npz")))
        assert manager.candidate is None
        after = gateway.recommend(sid, k=5)
        assert after["items"] == before  # incumbent, bit-identical behavior


def http_json(url, payload=None):
    if payload is not None:
        req = urllib.request.Request(
            url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
        )
    else:
        req = url
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


@pytest.mark.slow
class TestHTTPAdmin:
    """The /deploy control plane over real sockets."""

    @pytest.fixture()
    def server(self, stack):
        gateway, manager, store = stack
        gateway.start()
        try:
            yield gateway, manager
        finally:
            gateway.stop()

    def test_deploy_routes(self, server, make_artifact):
        gateway, manager = server
        status, body = http_json(f"{gateway.address}/deploy")
        assert status == 200 and body["incumbent"]["version"] == 1

        status, body = http_json(
            f"{gateway.address}/deploy",
            {"artifact": str(make_artifact("v2.npz")), "canary_pct": 25.0},
        )
        assert status == 200 and body["staged"] is True

        status, body = http_json(f"{gateway.address}/deploy/promote", {"reason": "ship it"})
        assert status == 200 and body["promoted"] == 2

        with pytest.raises(urllib.error.HTTPError) as err:
            http_json(f"{gateway.address}/deploy/promote", {})
        assert err.value.code == 409  # no candidate live

    def test_failed_stage_maps_to_conflict(self, server, make_artifact):
        gateway, _ = server
        bad = make_artifact("bad.npz", item_ids=[i + 1 for i in RAW_IDS])
        with pytest.raises(urllib.error.HTTPError) as err:
            http_json(f"{gateway.address}/deploy", {"artifact": str(bad)})
        assert err.value.code == 409

    def test_stage_without_artifact_is_bad_request(self, server):
        gateway, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            http_json(f"{gateway.address}/deploy", {"wait": True})
        assert err.value.code == 400
