"""Shared fixtures for the deployment suite.

Artifacts here are *untrained* registry modules — seeded random init makes
their rankings deterministic without paying for training, which is all the
deployment machinery needs (it moves weights, it never judges them).
"""

import numpy as np
import pytest

from repro import reliability as rel
from repro.artifacts import save_artifact
from repro.registry import ModelSpec, build_module

N_ITEMS = 60
NUM_OPS = 4
RAW_IDS = list(range(1000, 1000 + N_ITEMS))
SPEC = ModelSpec(
    name="STAMP", family="stamp", num_items=N_ITEMS, num_ops=NUM_OPS,
    params={"dim": 8, "seed": 3},
)


@pytest.fixture(autouse=True)
def clean_failpoints():
    """No armed failpoint may leak into (or out of) any test."""
    rel.disarm_all()
    yield
    rel.disarm_all()


@pytest.fixture(scope="session")
def base_weights():
    return {k: v.copy() for k, v in build_module(SPEC).state_dict().items()}


@pytest.fixture()
def make_artifact(tmp_path, base_weights):
    """Factory: write an artifact, optionally with corrupted/custom weights."""

    def _make(name="model.npz", weights=None, metadata=None, item_ids=None):
        path = tmp_path / name
        save_artifact(
            path,
            spec=SPEC,
            weights=weights or base_weights,
            item_ids=item_ids or RAW_IDS,
            metadata={"popularity": RAW_IDS[:10], **(metadata or {})},
        )
        return path

    return _make


@pytest.fixture()
def artifact_path(make_artifact):
    return make_artifact("v1.npz")


def corrupt_weights(weights, seed=0):
    """Shuffle the item-embedding rows: structurally valid, semantically wrong."""
    out = {k: v.copy() for k, v in weights.items()}
    key = max(out, key=lambda k: out[k].shape[0])  # the item embedding table
    rng = np.random.default_rng(seed)
    out[key] = out[key][rng.permutation(out[key].shape[0])]
    return out
