"""EventRingBuffer: bounded capacity, overwrite-oldest, drop accounting."""

import threading

from repro.deploy import Event, EventRingBuffer


def ev(i):
    return Event(f"s{i}", i, 0, float(i))


class TestRingBuffer:
    def test_append_then_drain_preserves_order(self):
        buf = EventRingBuffer(capacity=8)
        for i in range(5):
            assert buf.append(ev(i))
        assert [e.item for e in buf.drain()] == [0, 1, 2, 3, 4]
        assert buf.depth == 0

    def test_overflow_drops_oldest_and_counts(self):
        buf = EventRingBuffer(capacity=3)
        for i in range(5):
            buf.append(ev(i))
        assert buf.dropped == 2
        assert buf.appended == 5
        assert [e.item for e in buf.drain()] == [2, 3, 4]  # recency wins

    def test_append_returns_false_on_eviction(self):
        buf = EventRingBuffer(capacity=1)
        assert buf.append(ev(0)) is True
        assert buf.append(ev(1)) is False

    def test_partial_drain(self):
        buf = EventRingBuffer(capacity=8)
        for i in range(6):
            buf.append(ev(i))
        assert [e.item for e in buf.drain(limit=2)] == [0, 1]
        assert buf.depth == 4
        assert [e.item for e in buf.drain()] == [2, 3, 4, 5]

    def test_capacity_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            EventRingBuffer(capacity=0)

    def test_concurrent_appends_never_exceed_capacity(self):
        buf = EventRingBuffer(capacity=64)
        threads = [
            threading.Thread(target=lambda s: [buf.append(ev(s * 1000 + i)) for i in range(200)], args=(t,))
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert buf.depth == 64
        assert buf.appended == 800
        assert buf.dropped == 800 - 64
