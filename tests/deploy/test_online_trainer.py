"""OnlineTrainer: event ingestion, mini-epochs, snapshot lineage."""

import time

import pytest

from repro.deploy import (
    DeploymentManager,
    DeploymentStore,
    Event,
    EventRingBuffer,
    OnlineTrainer,
    param_hash,
)
from repro.artifacts import load_artifact
from repro.eval.trainer import NeuralRecommender
from repro.serve import RecommenderService


@pytest.fixture()
def base(artifact_path):
    return NeuralRecommender.from_artifact(artifact_path)


def make_trainer(base, tmp_path, **kwargs):
    buffer = EventRingBuffer()
    store = DeploymentStore(tmp_path / "deploy")
    kwargs.setdefault("min_examples", 4)
    return OnlineTrainer(base, buffer, store, **kwargs), buffer, store


def feed_sessions(buffer, n_sessions=8, steps=5):
    """Synthetic macro transitions: dense items 1..steps per session."""
    for s in range(n_sessions):
        for i in range(1, steps + 1):
            buffer.append(Event(f"s{s}", i, (i % 3), float(i)))


class TestIngest:
    def test_examples_harvested_only_on_macro_transition(self, base, tmp_path):
        trainer, buffer, _ = make_trainer(base, tmp_path)
        buffer.append(Event("s0", 5, 0, 0.0))
        buffer.append(Event("s0", 5, 1, 1.0))  # merged micro-op: no example
        buffer.append(Event("s0", 7, 0, 2.0))  # transition: one example
        assert trainer.ingest_events() == 3
        assert trainer.pending_examples == 1
        assert trainer._examples[0].target == 7

    def test_unfitted_base_rejected(self, tmp_path):
        from .conftest import SPEC

        with pytest.raises(ValueError):
            OnlineTrainer(
                NeuralRecommender(SPEC), EventRingBuffer(), DeploymentStore(tmp_path)
            )

    def test_session_table_is_bounded(self, base, tmp_path):
        trainer, buffer, _ = make_trainer(base, tmp_path, max_sessions=4)
        feed_sessions(buffer, n_sessions=10, steps=2)
        trainer.ingest_events()
        assert len(trainer._sessions) <= 4


class TestSnapshot:
    def test_below_min_examples_emits_nothing(self, base, tmp_path):
        trainer, buffer, store = make_trainer(base, tmp_path, min_examples=100)
        feed_sessions(buffer, n_sessions=2, steps=3)
        assert trainer.snapshot() is None
        assert store.lineage() == []

    def test_snapshot_writes_candidate_with_lineage(self, base, tmp_path):
        trainer, buffer, store = make_trainer(base, tmp_path, base_version=1)
        feed_sessions(buffer)
        path = trainer.snapshot()
        assert path is not None and path.exists()
        record = store.lineage()[-1]
        assert record["status"] == "candidate"
        assert record["parent"] == 1
        bundle = load_artifact(path)
        assert bundle.metadata["deployment"]["parent"] == 1
        assert bundle.metadata["deployment"]["examples"] == trainer.pending_examples
        assert record["param_hash"] == param_hash(bundle.weights)

    def test_training_actually_moves_weights(self, base, tmp_path):
        trainer, buffer, _ = make_trainer(base, tmp_path, mini_epochs=2, lr=1e-2)
        feed_sessions(buffer)
        path = trainer.snapshot()
        assert param_hash(load_artifact(path).weights) != param_hash(
            base.model.state_dict()
        )

    def test_snapshots_are_deterministic(self, base, artifact_path, tmp_path):
        hashes = []
        for run in range(2):
            rec = NeuralRecommender.from_artifact(artifact_path)
            trainer, buffer, _ = make_trainer(rec, tmp_path / f"r{run}", seed=5)
            feed_sessions(buffer)
            hashes.append(param_hash(load_artifact(trainer.snapshot()).weights))
        assert hashes[0] == hashes[1]

    def test_successive_snapshots_chain_parents(self, base, tmp_path):
        trainer, buffer, store = make_trainer(base, tmp_path, base_version=1)
        feed_sessions(buffer)
        trainer.snapshot()
        feed_sessions(buffer, n_sessions=3)
        trainer.snapshot()
        parents = [r["parent"] for r in store.lineage()]
        assert parents == [1, 1]  # v1 chains off base, v2 off v1... by version
        assert [r["version"] for r in store.lineage()] == [1, 2]
        assert load_artifact(store.artifact_path(2)).metadata["deployment"]["parent"] == 1

    def test_snapshot_stages_cleanly(self, base, artifact_path, tmp_path):
        """The train → snapshot → stage loop round-trips end to end."""
        store = DeploymentStore(tmp_path / "deploy")
        service = RecommenderService.from_artifact(artifact_path)
        manager = DeploymentManager(service, store=store, incumbent_path=str(artifact_path))

        buffer = EventRingBuffer()
        trainer = OnlineTrainer(base, buffer, store, base_version=1, min_examples=4)
        feed_sessions(buffer)
        path = trainer.snapshot()

        assert manager.stage(path, wait=True)
        assert manager.candidate.version == 2
        snapshot_record = next(r for r in store.lineage() if r["version"] == 2)
        assert manager.candidate.param_hash == snapshot_record["param_hash"]


class TestLoop:
    def test_start_loop_emits_and_stops(self, base, tmp_path):
        trainer, buffer, _ = make_trainer(base, tmp_path)
        feed_sessions(buffer)
        seen = []
        stop = trainer.start_loop(0.02, on_snapshot=seen.append)
        deadline = time.monotonic() + 5.0
        while not seen and time.monotonic() < deadline:
            time.sleep(0.01)
        stop.set()
        assert seen and seen[0].exists()
