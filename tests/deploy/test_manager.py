"""DeploymentManager: stage/warm/flip, decisions, and crash chaos.

The chaos class kills the swap (SimulatedCrash — uncatchable by ``except
Exception``) at every ``deploy.swap.*`` failpoint and asserts the
incumbent keeps serving bit-identically and recovery from the lineage
store reboots the exact promoted generation (param-hash equality).
"""

import numpy as np
import pytest

from repro.artifacts import load_artifact
from repro.deploy import (
    DeploymentConfig,
    DeploymentError,
    DeploymentManager,
    DeploymentStore,
    param_hash,
)
from repro.reliability import armed, crashing, raising
from repro.serve import RecommenderService

from .conftest import NUM_OPS, RAW_IDS, corrupt_weights

SWAP_FAILPOINTS = ["deploy.swap.load", "deploy.swap.warm", "deploy.swap.flip", "deploy.swap.commit"]


def make_manager(artifact_path, tmp_path, **config_kwargs):
    service = RecommenderService.from_artifact(artifact_path)
    store = DeploymentStore(tmp_path / "deploy")
    config = DeploymentConfig(auto_decide=False, **config_kwargs)
    manager = DeploymentManager(
        service, store=store, config=config, incumbent_path=str(artifact_path)
    )
    return manager


def drive(service, sid="u1"):
    for item, op in [(1005, 1), (1006, 2), (1010, 0)]:
        service.record(sid, item, op)


class TestStage:
    def test_stage_installs_candidate(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path, canary_pct=50.0)
        assert manager.stage(make_artifact("v2.npz"), wait=True)
        assert manager.candidate is not None
        assert manager.candidate.version == 2
        assert manager.router is not None and manager.comparator is not None
        assert manager.status()["candidate"]["version"] == 2
        statuses = {r["version"]: r["status"] for r in manager.store.lineage()}
        assert statuses == {1: "promoted", 2: "candidate"}

    def test_second_stage_rejected_while_candidate_live(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        manager.stage(make_artifact("v2.npz"), wait=True)
        with pytest.raises(DeploymentError):
            manager.stage(make_artifact("v3.npz"))

    def test_vocab_mismatch_fails_cleanly(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        bad = make_artifact("bad.npz", item_ids=[i + 1 for i in RAW_IDS])
        assert not manager.stage(bad, wait=True)
        assert manager.candidate is None
        assert manager.timeline[-1]["event"] == "swap_failed"
        assert "vocabulary" in manager.timeline[-1]["error"]

    def test_nonfinite_warmup_fails_cleanly(self, artifact_path, base_weights, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        poisoned = {k: v.copy() for k, v in base_weights.items()}
        key = next(iter(poisoned))
        poisoned[key] = np.full_like(poisoned[key], np.nan)
        assert not manager.stage(make_artifact("nan.npz", weights=poisoned), wait=True)
        assert manager.candidate is None
        assert manager.timeline[-1]["event"] == "swap_failed"

    def test_incumbent_serves_throughout_staging(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        service = manager.service
        drive(service)
        before = service.top_k("u1", k=5)
        manager.stage(make_artifact("v2.npz"), wait=True)
        # Incumbent-arm sessions still score identically mid-canary.
        incumbent_sid = next(
            f"s{i}" for i in range(100) if not manager.router.is_candidate(f"s{i}")
        )
        drive(service, incumbent_sid)
        assert service.top_k(incumbent_sid, k=5) == before


class TestDecisions:
    def test_promote_swaps_serving_generation(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        v2 = make_artifact("v2.npz", weights=corrupt_weights(load_artifact(artifact_path).weights))
        manager.stage(v2, wait=True)
        candidate_hash = manager.candidate.param_hash
        promoted = manager.promote(reason="test")
        assert manager.generation == 1
        assert manager.candidate is None
        assert manager.incumbent is promoted
        assert manager.service.recommender is promoted.recommender
        assert promoted.param_hash == candidate_hash == param_hash(load_artifact(v2).weights)
        statuses = {r["version"]: r["status"] for r in manager.store.lineage()}
        assert statuses == {1: "superseded", 2: "promoted"}

    def test_rollback_restores_incumbent_bit_identically(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        incumbent_hash = manager.incumbent.param_hash
        incumbent_rec = manager.service.recommender
        manager.stage(make_artifact("v2.npz"), wait=True)
        manager.rollback(reason="test")
        assert manager.candidate is None
        assert manager.generation == 0
        assert manager.service.recommender is incumbent_rec
        assert manager.incumbent.param_hash == incumbent_hash
        statuses = {r["version"]: r["status"] for r in manager.store.lineage()}
        assert statuses[2] == "rolled_back"

    def test_promote_without_candidate_raises(self, artifact_path, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        with pytest.raises(DeploymentError):
            manager.promote()
        with pytest.raises(DeploymentError):
            manager.rollback()

    def test_candidate_breaker_open_demotes(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path, breaker_threshold=3)
        manager.stage(make_artifact("v2.npz"), wait=True)
        for _ in range(3):
            manager.candidate_failure(RuntimeError("boom"))
        assert manager.candidate is None
        assert manager.timeline[-1]["event"] == "rolled_back"
        assert "breaker" in manager.timeline[-1]["reason"]

    def test_divergence_watchdog_demotes(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        manager.stage(make_artifact("v2.npz"), wait=True)
        service = manager.service
        drive(service)
        example = service.session("u1").to_example(service.max_macro_len)

        class Diverged:
            name = "nan"

            def score_batch(self, batch):
                return np.full((batch.batch_size, len(RAW_IDS)), np.nan)

        manager.candidate.recommender = Diverged()
        manager.observe_event(example, 0, "u1")
        assert manager.candidate is None
        assert "divergence" in manager.timeline[-1]["reason"]


class TestSwapChaos:
    """Process kill at every deploy.swap.* site: incumbent survives, lineage recovers."""

    @pytest.mark.parametrize("site", SWAP_FAILPOINTS)
    def test_crash_never_loses_the_incumbent(self, site, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        service = manager.service
        incumbent_hash = manager.incumbent.param_hash
        drive(service)
        before = service.top_k("u1", k=5)

        v2 = make_artifact("v2.npz")
        with armed(site, crashing()):
            manager.stage(v2, wait=True)  # swap thread absorbs the crash

        # The incumbent still serves, bit-identically.
        assert service.top_k("u1", k=5) == before
        assert manager.incumbent.param_hash == incumbent_hash
        if site == "deploy.swap.commit":
            # Crash landed *after* the flip: the only consistent exit is a
            # recorded rollback of the just-installed candidate.
            assert manager.timeline[-1]["event"] == "rolled_back"
        else:
            assert manager.timeline[-1]["event"] == "swap_failed"
        assert manager.candidate is None

        # A fresh process recovering from the lineage store boots the
        # incumbent generation, bit-identical by param hash.
        recovered = DeploymentManager.recover(manager.store)
        assert recovered.incumbent.param_hash == incumbent_hash

    @pytest.mark.parametrize("site", SWAP_FAILPOINTS)
    def test_next_swap_succeeds_after_crash(self, site, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        with armed(site, crashing(), times=1):
            manager.stage(make_artifact("v2.npz"), wait=True)
        assert manager.candidate is None
        assert manager.stage(make_artifact("v3.npz"), wait=True)
        assert manager.candidate is not None

    def test_exception_at_load_is_contained(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        with armed("deploy.swap.load", raising(OSError("disk gone"))):
            assert not manager.stage(make_artifact("v2.npz"), wait=True)
        assert manager.timeline[-1]["event"] == "swap_failed"


class TestRecovery:
    def test_recover_boots_latest_promoted(self, artifact_path, make_artifact, tmp_path):
        manager = make_manager(artifact_path, tmp_path)
        v2 = make_artifact("v2.npz", weights=corrupt_weights(load_artifact(artifact_path).weights))
        manager.stage(v2, wait=True)
        manager.promote()
        promoted_hash = manager.incumbent.param_hash

        recovered = DeploymentManager.recover(manager.store)
        assert recovered.incumbent.version == 2
        assert recovered.incumbent.param_hash == promoted_hash
        assert recovered.service.num_ops == NUM_OPS
        assert recovered.service.vocab.ordered_raw_ids() == RAW_IDS

    def test_recover_from_empty_store_raises(self, tmp_path):
        with pytest.raises(DeploymentError):
            DeploymentManager.recover(DeploymentStore(tmp_path / "empty"))

    def test_version_comes_from_artifact_metadata_when_present(
        self, artifact_path, make_artifact, tmp_path
    ):
        manager = make_manager(artifact_path, tmp_path)
        tagged = make_artifact("tagged.npz", metadata={"deployment": {"version": 9, "parent": 1}})
        manager.stage(tagged, wait=True)
        assert manager.candidate.version == 9
