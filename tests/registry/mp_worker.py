"""Spawn-target for the cross-process artifact test.

Must be a real importable module (not a closure) because the ``spawn``
start method pickles only the function's qualified name. The worker gets
*nothing* but the artifact path and raw batch data — no dataset, no spec,
no shared memory — which is exactly the portability claim artifacts make.
"""

from __future__ import annotations


def score_from_artifact(artifact_path: str, payload: dict, queue) -> None:
    """Rebuild the model from the artifact alone and score the batch."""
    try:
        from repro.artifacts import load_recommender
        from repro.data.dataset import collate
        from repro.data.schema import MacroSession

        recommender = load_recommender(artifact_path)
        examples = [
            MacroSession(items, [list(o) for o in ops], target=target)
            for items, ops, target in payload["examples"]
        ]
        scores = recommender.score_batch(collate(examples))
        queue.put(("ok", recommender.name, scores))
    except Exception as error:  # pragma: no cover - surfaced by the parent
        queue.put(("error", repr(error), None))
