"""Registry coverage of the objective-variant entries and resolvers."""

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.registry import FIXED_CL_PREFIX, REGISTRY, resolve


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=7), cfg.operations, min_support=2, name="jd"
    )


class TestEntries:
    def test_embsr_ssl_pins_the_ssl_objective(self):
        entry = resolve("EMBSR-SSL")
        assert entry.family == "embsr"
        assert dict(entry.train) == {"objective": "ssl", "cl_weight": 0.1}

    def test_mkm_sr_op_pins_the_op_aux_objective(self):
        entry = resolve("MKM-SR-OP")
        assert entry.family == "mkm-sr"
        assert dict(entry.train) == {"objective": "op-aux", "cl_weight": 0.2}

    def test_plain_models_carry_no_objective(self):
        assert dict(resolve("EMBSR").train) == {}
        assert dict(resolve("MKM-SR").train) == {}

    def test_cl_sweep_resolver(self):
        entry = resolve(f"{FIXED_CL_PREFIX}0.5")
        assert dict(entry.train) == {"objective": "ssl", "cl_weight": 0.5}
        assert f"{FIXED_CL_PREFIX}0.5" in REGISTRY

    def test_cl_sweep_rejects_bad_floats(self):
        with pytest.raises(KeyError, match="expected EMBSR-SSL-cl"):
            resolve(f"{FIXED_CL_PREFIX}abc")


class TestSpecMerging:
    def test_entry_defaults_reach_the_spec(self, dataset):
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=12))
        spec = runner.spec_for("EMBSR-SSL")
        assert spec.train["objective"] == "ssl"
        assert spec.train["cl_weight"] == 0.1

    def test_explicit_config_overrides_the_entry(self, dataset):
        runner = ExperimentRunner(
            dataset, ExperimentConfig(dim=12, objective="ce", cl_weight=0.9)
        )
        spec = runner.spec_for("EMBSR-SSL")
        assert spec.train["objective"] == "ce"
        assert spec.train["cl_weight"] == 0.9

    def test_auto_config_does_not_shadow_entry_defaults(self, dataset):
        """objective=None in ExperimentConfig must not overwrite EMBSR-SSL's
        registry defaults with plain ce."""
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=12))
        assert runner.spec_for("EMBSR-SSL").train["objective"] == "ssl"
        assert "objective" not in runner.spec_for("EMBSR").train

    def test_sweep_names_produce_distinct_specs(self, dataset):
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=12))
        weights = [
            runner.spec_for(f"{FIXED_CL_PREFIX}{w}").train["cl_weight"]
            for w in (0.05, 0.2)
        ]
        assert weights == [0.05, 0.2]


class TestArtifactRoundTrip:
    def test_ssl_artifact_rebuilds_and_scores(self, dataset, tmp_path):
        """An EMBSR-SSL artifact carries its objective in the spec and
        rebuilds a scoring-equivalent model in a fresh process's registry."""
        from repro.eval.trainer import NeuralRecommender

        config = ExperimentConfig(
            dim=12, epochs=1, batch_size=32, seed=5, dtype="float64"
        )
        runner = ExperimentRunner(dataset, config)
        recommender = runner.build("EMBSR-SSL")
        recommender.fit(dataset)
        path = tmp_path / "embsr_ssl.npz"
        recommender.save(path)

        loaded = NeuralRecommender.from_artifact(path)
        assert loaded.name == "EMBSR-SSL"
        assert loaded.spec.train["objective"] == "ssl"
        scores, _ = runner.score_on_test(recommender)
        loaded_scores, _ = runner.score_on_test(loaded)
        assert np.array_equal(scores, loaded_scores)
