"""The artifact portability guarantee, enforced across a process boundary.

A worker process started with the ``spawn`` method (fresh interpreter, no
inherited state) receives only the artifact *path* plus raw session data,
reconstructs the recommender, and must return bit-identical scores to the
parent's fitted model.
"""

import multiprocessing

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import collate
from repro.eval import ExperimentConfig, ExperimentRunner

from .mp_worker import score_from_artifact


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 150, seed=33), cfg.operations, min_support=2, name="jd"
    )


def test_spawned_worker_scores_identically(dataset, tmp_path):
    runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=1, seed=0))
    fitted = runner.run("EMBSR").recommender
    path = tmp_path / "embsr.npz"
    fitted.save(path)

    examples = dataset.test[:8]
    expected = fitted.score_batch(collate(examples))
    payload = {
        "examples": [
            (list(ex.macro_items), [list(o) for o in ex.op_sequences], ex.target)
            for ex in examples
        ]
    }

    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    worker = ctx.Process(target=score_from_artifact, args=(str(path), payload, queue))
    worker.start()
    try:
        status, name, scores = queue.get(timeout=120)
    finally:
        worker.join(timeout=30)
    assert status == "ok", f"worker failed: {name}"
    assert name == "EMBSR"
    np.testing.assert_array_equal(scores, expected)
