"""Tests for the model registry: resolution, specs, and resume validation."""

import json
import pickle

import numpy as np
import pytest

from repro.registry import (
    FIXED_BETA_PREFIX,
    NEURAL,
    NONPARAMETRIC,
    REGISTRY,
    ModelRegistry,
    ModelSpec,
    RegisteredModel,
    TABLE3_MODELS,
    model_names,
    resolve,
    spec_for,
)


class TestResolution:
    @pytest.mark.parametrize("name", TABLE3_MODELS)
    def test_table3_names_resolve(self, name):
        entry = resolve(name)
        assert entry.name == name

    def test_variants_resolve(self):
        for name in ("EMBSR-NS", "EMBSR-NG", "EMBSR-NF", "SGNN-Self", "RNN-Self"):
            assert resolve(name).family == "embsr"

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="repro models"):
            resolve("GPT-9000")

    def test_contains(self):
        assert "EMBSR" in REGISTRY
        assert "GPT-9000" not in REGISTRY

    def test_beta_pattern_resolves(self):
        entry = resolve(f"{FIXED_BETA_PREFIX}0.4")
        assert entry.family == "embsr"
        assert entry.fixed["fusion"] == "fixed:0.4"

    def test_beta_pattern_rejects_garbage(self):
        with pytest.raises(KeyError):
            resolve(f"{FIXED_BETA_PREFIX}spam")

    def test_kinds(self):
        assert resolve("S-POP").kind == NONPARAMETRIC
        assert resolve("SKNN").kind == NONPARAMETRIC
        assert resolve("EMBSR").kind == NEURAL

    def test_model_names_cover_table3(self):
        names = model_names()
        for name in TABLE3_MODELS:
            assert name in names


class TestSpecFor:
    def test_knobs_flow_into_params(self):
        spec = spec_for("SGNN-HN", num_items=100, num_ops=5, dim=24, dropout=0.3, seed=7, w_k=6.0)
        assert spec.params == {"dim": 24, "dropout": 0.3, "seed": 7, "w_k": 6.0}
        assert (spec.num_items, spec.num_ops) == (100, 5)

    def test_macro_families_ignore_w_k(self):
        spec = spec_for("STAMP", num_items=100, num_ops=5, w_k=99.0)
        assert "w_k" not in spec.params

    def test_variant_switches_are_frozen_in(self):
        spec = spec_for("EMBSR-NS", num_items=100, num_ops=5)
        from repro.core import VARIANT_SWITCHES

        assert spec.params["attention"] == VARIANT_SWITCHES["EMBSR-NS"]["attention"]

    def test_extra_params_pass_through(self):
        spec = spec_for("EMBSR", num_items=100, num_ops=5, max_seq_len=10)
        assert spec.params["max_seq_len"] == 10

    def test_spec_json_round_trip(self):
        spec = spec_for("EMBSR", num_items=100, num_ops=5, train={"epochs": 3, "lr": 0.01})
        again = ModelSpec.from_json(spec.to_json())
        assert again == spec
        # ... and the JSON itself is plain data.
        json.loads(spec.to_json())

    def test_spec_pickle_round_trip(self):
        spec = spec_for("MKM-SR", num_items=100, num_ops=5)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_spec_rejects_unserializable_params(self):
        with pytest.raises(TypeError):
            ModelSpec("x", "embsr", 10, 2, params={"fn": lambda: 1})

    def test_train_config_materializes(self):
        spec = spec_for("EMBSR", num_items=10, num_ops=2, dtype="float32", train={"epochs": 3})
        cfg = spec.train_config(verbose=True)
        assert cfg.epochs == 3 and cfg.dtype == "float32" and cfg.verbose

    def test_architecture_mismatch_ignores_train_and_dtype(self):
        a = spec_for("EMBSR", num_items=10, num_ops=2, dtype="float32", train={"epochs": 1})
        b = spec_for("EMBSR", num_items=10, num_ops=2, dtype="float64", train={"epochs": 9})
        assert a.architecture_mismatch(b) == {}
        c = spec_for("EMBSR", num_items=11, num_ops=2)
        assert "num_items" in a.architecture_mismatch(c)


class TestRegistryInvariants:
    def test_duplicate_model_rejected(self):
        reg = ModelRegistry()
        reg.register_family("fam", recommender_builder=lambda spec: None)
        reg.register_model(RegisteredModel("M", "fam", NONPARAMETRIC))
        with pytest.raises(ValueError, match="already registered"):
            reg.register_model(RegisteredModel("M", "fam", NONPARAMETRIC))

    def test_unknown_family_rejected(self):
        reg = ModelRegistry()
        with pytest.raises(ValueError, match="unregistered family"):
            reg.register_model(RegisteredModel("M", "ghost", NEURAL))

    def test_family_needs_exactly_one_builder(self):
        reg = ModelRegistry()
        with pytest.raises(ValueError):
            reg.register_family("fam")
        with pytest.raises(ValueError):
            reg.register_family(
                "fam", module_builder=lambda s: None, recommender_builder=lambda s: None
            )

    def test_build_module_refuses_nonparametric(self):
        spec = spec_for("S-POP", num_items=10, num_ops=2)
        with pytest.raises(KeyError, match="non-parametric"):
            REGISTRY.build_module(spec)


class TestExperimentRunnerIntegration:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data import generate_dataset, jd_appliances_config, prepare_dataset

        cfg = jd_appliances_config()
        return prepare_dataset(
            generate_dataset(cfg, 150, seed=11), cfg.operations, min_support=2, name="jd"
        )

    def test_model_names_match_registry(self):
        from repro.eval import MODEL_NAMES

        assert MODEL_NAMES == list(TABLE3_MODELS)

    def test_runner_builds_via_registry(self, dataset):
        from repro.eval import ExperimentConfig, ExperimentRunner

        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0, seed=0))
        rec = runner.build("EMBSR")
        assert rec.spec.name == "EMBSR"
        assert rec.spec.num_items == dataset.num_items

    def test_runner_spec_is_portable(self, dataset):
        """A spec minted by the runner rebuilds bit-identically on its own."""
        from repro.eval import ExperimentConfig, ExperimentRunner
        from repro.registry import build_module

        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0, seed=3))
        spec = ModelSpec.from_json(runner.spec_for("SR-GNN").to_json())
        a, b = build_module(spec).state_dict(), build_module(spec).state_dict()
        assert a.keys() == b.keys()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_unknown_model_raises_keyerror(self, dataset):
        from repro.eval import ExperimentConfig, ExperimentRunner

        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0))
        with pytest.raises(KeyError):
            runner.build("NOPE")


class TestResumeSpecValidation:
    def test_resume_with_wrong_architecture_fails_with_diff(self, tmp_path):
        from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
        from repro.eval import ExperimentConfig, ExperimentRunner

        cfg = jd_appliances_config()
        dataset = prepare_dataset(
            generate_dataset(cfg, 150, seed=12), cfg.operations, min_support=2, name="jd"
        )
        state = tmp_path / "state.npz"
        runner = ExperimentRunner(
            dataset, ExperimentConfig(dim=8, epochs=1, seed=0, checkpoint_path=str(state))
        )
        runner.run("STAMP")
        assert state.exists()

        other = ExperimentRunner(
            dataset, ExperimentConfig(dim=16, epochs=2, seed=0, resume_from=str(state))
        )
        with pytest.raises(ValueError, match="different architecture"):
            other.build("STAMP").fit(dataset)
