"""Artifact bundles: save/load round trips for every system, both dtypes."""

import numpy as np
import pytest

from repro.artifacts import (
    ModelArtifact,
    load_artifact,
    load_recommender,
    save_artifact,
    try_load_artifact,
)
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import collate
from repro.eval import ExperimentConfig, ExperimentRunner, MODEL_NAMES
from repro.eval.trainer import NeuralRecommender
from repro.registry import spec_for

NEURAL_NAMES = [n for n in MODEL_NAMES if n not in ("S-POP", "SKNN")]
VARIANTS = ["EMBSR-NS", "SGNN-Self"]


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 180, seed=21), cfg.operations, min_support=2, name="jd"
    )


def fit_quick(dataset, name, dtype="float64"):
    """Build + 'fit' at zero epochs: initialized weights, full artifact path."""
    runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0, seed=0, dtype=dtype))
    return runner.run(name).recommender


class TestRoundTripAllSystems:
    @pytest.mark.parametrize("name", NEURAL_NAMES + VARIANTS)
    def test_scores_bit_identical(self, dataset, name, tmp_path):
        fitted = fit_quick(dataset, name)
        path = tmp_path / "model.npz"
        fitted.save(path)

        restored = NeuralRecommender.from_artifact(path)
        batch = collate(dataset.test[:12])
        np.testing.assert_array_equal(
            fitted.score_batch(batch), restored.score_batch(batch)
        )

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_both_dtypes_bit_identical(self, dataset, dtype, tmp_path):
        fitted = fit_quick(dataset, "EMBSR", dtype=dtype)
        path = tmp_path / "model.npz"
        fitted.save(path)
        restored = NeuralRecommender.from_artifact(path)
        batch = collate(dataset.test[:12])
        scores = restored.score_batch(batch)
        assert scores.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(fitted.score_batch(batch), scores)

    def test_nonparametric_save_message(self, dataset, tmp_path):
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0))
        for name in ("S-POP", "SKNN"):
            rec = runner.build(name).fit(dataset)
            with pytest.raises(NotImplementedError, match="non-parametric"):
                rec.save(tmp_path / "x.npz")
            with pytest.raises(NotImplementedError, match="re-fit"):
                rec.load(dataset, tmp_path / "x.npz")


class TestBundleContents:
    def test_metadata_and_vocab(self, dataset, tmp_path):
        fitted = fit_quick(dataset, "EMBSR")
        path = tmp_path / "embsr.npz"
        fitted.save(path, metrics={"H@20": 42.0})
        bundle = load_artifact(path)

        assert bundle.spec.name == "EMBSR"
        assert bundle.spec.num_items == dataset.num_items
        assert bundle.metadata["metrics"]["H@20"] == 42.0
        assert bundle.metadata["dataset"]["name"] == "jd"
        assert len(bundle.metadata["dataset"]["fingerprint"]) == 16
        assert bundle.metadata["popularity"]  # non-empty ranking of raw ids
        # Vocabulary round-trips to the exact dense mapping.
        vocab = bundle.vocab()
        assert vocab.ordered_raw_ids() == dataset.vocab.ordered_raw_ids()

    def test_from_artifact_needs_no_dataset(self, dataset, tmp_path):
        """The acceptance criterion: path alone -> scoring recommender."""
        fitted = fit_quick(dataset, "STAMP")
        path = tmp_path / "stamp.npz"
        fitted.save(path)
        del fitted

        restored = load_recommender(path)
        assert restored.name == "STAMP"
        batch = collate(dataset.test[:4])
        assert restored.score_batch(batch).shape == (4, dataset.num_items)

    def test_inconsistent_bundle_rejected(self, dataset):
        spec = spec_for("STAMP", num_items=dataset.num_items, num_ops=dataset.num_operations)
        with pytest.raises(ValueError, match="inconsistent"):
            ModelArtifact(spec, {}, item_ids=[1, 2, 3]).validate()


class TestCompatibility:
    def test_legacy_checkpoint_still_loads(self, dataset, tmp_path):
        """Bare-parameter .npz files (the old save format) keep working."""
        from repro.nn import save_checkpoint

        fitted = fit_quick(dataset, "STAMP")
        legacy = tmp_path / "legacy.npz"
        save_checkpoint(fitted.model, legacy)
        assert try_load_artifact(legacy) is None

        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0, seed=0))
        restored = runner.build("STAMP").load(dataset, legacy)
        batch = collate(dataset.test[:8])
        np.testing.assert_array_equal(
            fitted.score_batch(batch), restored.score_batch(batch)
        )

    def test_artifact_load_via_recommender_load(self, dataset, tmp_path):
        """Recommender.load sniffs the format: artifacts work there too."""
        fitted = fit_quick(dataset, "STAMP")
        path = tmp_path / "stamp.npz"
        fitted.save(path)
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0, seed=0))
        restored = runner.build("STAMP").load(dataset, path)
        batch = collate(dataset.test[:8])
        np.testing.assert_array_equal(
            fitted.score_batch(batch), restored.score_batch(batch)
        )

    def test_architecture_mismatch_names_fields(self, dataset, tmp_path):
        fitted = fit_quick(dataset, "STAMP")
        path = tmp_path / "stamp.npz"
        fitted.save(path)
        other = ExperimentRunner(dataset, ExperimentConfig(dim=16, epochs=0, seed=0))
        with pytest.raises(ValueError, match="does not match this spec"):
            other.build("STAMP").load(dataset, path)

    def test_not_an_artifact_raises_cleanly(self, tmp_path):
        bare = tmp_path / "bare.npz"
        np.savez(bare, weights=np.zeros(3))
        with pytest.raises(ValueError, match="not a model artifact"):
            load_artifact(bare)

    def test_cross_dtype_load_casts(self, dataset, tmp_path):
        """A float64 artifact loads into a float32 recommender (and casts)."""
        fitted = fit_quick(dataset, "STAMP", dtype="float64")
        path = tmp_path / "stamp.npz"
        fitted.save(path)
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=0, seed=0, dtype="float32"))
        restored = runner.build("STAMP").load(dataset, path)
        batch = collate(dataset.test[:4])
        assert restored.score_batch(batch).dtype == np.float32


class TestGatewayFromArtifact:
    def test_gateway_boots_and_serves_without_dataset(self, dataset, tmp_path):
        """Artifact file -> full serving stack, in process, no dataset."""
        from repro.serving import ServingGateway

        fitted = fit_quick(dataset, "STAMP")
        path = tmp_path / "stamp.npz"
        fitted.save(path)

        gateway = ServingGateway.from_artifact(path)
        assert gateway.admission.fallback is not None  # popularity from metadata
        gateway.batcher.start()
        try:
            raw_item = dataset.vocab.ordered_raw_ids()[0]
            ingest = gateway.ingest("s1", item=raw_item, operation=1)
            assert ingest["applied"]
            result = gateway.recommend("s1", k=5)
            assert result["source"] == "model"
            assert len(result["items"]) == 5
        finally:
            gateway.batcher.stop()
