"""Shared behaviour tests across all nine neural baselines."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import no_grad
from repro.baselines import BERT4Rec, GCSAN, HUP, MKMSR, NARM, RIB, SGNNHN, SRGNN, STAMP
from repro.data import DataLoader, MacroSession, collate, generate_dataset, jd_appliances_config, prepare_dataset


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 400, seed=21), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture(scope="module")
def batch(dataset):
    return next(iter(DataLoader(dataset.train, batch_size=16, seed=5)))


def build_all(dataset, dim=12):
    v, o = dataset.num_items, dataset.num_operations
    return {
        "NARM": NARM(v, dim=dim),
        "STAMP": STAMP(v, dim=dim),
        "SR-GNN": SRGNN(v, dim=dim),
        "GC-SAN": GCSAN(v, dim=dim),
        "BERT4Rec": BERT4Rec(v, dim=dim),
        "SGNN-HN": SGNNHN(v, dim=dim),
        "RIB": RIB(v, o, dim=dim),
        "HUP": HUP(v, o, dim=dim),
        "MKM-SR": MKMSR(v, o, dim=dim),
    }


MACRO_ONLY = ["NARM", "STAMP", "SR-GNN", "GC-SAN", "BERT4Rec", "SGNN-HN"]
MICRO_AWARE = ["RIB", "HUP", "MKM-SR"]


class TestAllNeuralBaselines:
    @pytest.fixture(scope="class")
    def models(self, dataset):
        return build_all(dataset)

    def test_forward_shapes(self, models, dataset, batch):
        for name, model in models.items():
            logits = model(batch)
            assert logits.shape == (batch.batch_size, dataset.num_items), name
            assert np.isfinite(logits.data).all(), name

    def test_backward_produces_gradients(self, models, batch):
        for name, model in models.items():
            model.zero_grad()
            loss = nn.cross_entropy(model(batch), batch.target_classes)
            loss.backward()
            grads = sum(
                1 for p in model.parameters() if p.grad is not None and np.abs(p.grad).sum() > 0
            )
            assert grads >= 4, f"{name}: only {grads} parameters received gradient"

    def test_single_item_sessions(self, models, dataset):
        b = collate([MacroSession([3], [[0]], target=1)])
        for name, model in models.items():
            model.eval()
            with no_grad():
                assert np.isfinite(model(b).data).all(), name

    def test_padding_consistency(self, models):
        short = MacroSession([3, 7], [[0], [1]], target=1)
        long = MacroSession([2, 4, 6, 8, 9], [[0]] * 5, target=1)
        for name, model in models.items():
            model.eval()
            with no_grad():
                alone = model(collate([short])).data[0]
                together = model(collate([short, long])).data[0]
            assert np.allclose(alone, together, atol=1e-8), name


class TestMicroAwareness:
    """Micro models must react to operations; macro models must not."""

    items = [3, 7, 5]
    ops_a = [[0], [1, 2], [0]]
    ops_b = [[0], [0], [0, 3]]

    def _scores(self, model, ops):
        model.eval()
        with no_grad():
            return model(collate([MacroSession(self.items, ops, target=1)])).data

    @pytest.mark.parametrize("name", MICRO_AWARE)
    def test_micro_models_sensitive(self, dataset, name):
        model = build_all(dataset)[name]
        assert not np.allclose(self._scores(model, self.ops_a), self._scores(model, self.ops_b))

    @pytest.mark.parametrize("name", MACRO_ONLY)
    def test_macro_models_blind(self, dataset, name):
        model = build_all(dataset)[name]
        assert np.allclose(self._scores(model, self.ops_a), self._scores(model, self.ops_b))


class TestBERT4Rec:
    def test_mask_token_is_extra_row(self, dataset):
        model = BERT4Rec(dataset.num_items, dim=12)
        assert model.mask_id == dataset.num_items + 1
        assert model.item_embedding.weight.shape[0] == dataset.num_items + 2

    def test_scores_exclude_mask_token(self, dataset, batch):
        model = BERT4Rec(dataset.num_items, dim=12)
        assert model(batch).shape[1] == dataset.num_items


class TestSGNNHN:
    def test_normalized_scores_bounded(self, dataset, batch):
        model = SGNNHN(dataset.num_items, dim=12, w_k=12.0)
        model.eval()
        with no_grad():
            assert np.abs(model(batch).data).max() <= 12.0 + 1e-9
