"""Unit tests for S-POP and SKNN."""

import numpy as np
import pytest

from repro.baselines import SKNN, SPop
from repro.data import (
    DataLoader,
    MacroSession,
    collate,
    generate_dataset,
    jd_appliances_config,
    prepare_dataset,
    trivago_config,
)


@pytest.fixture(scope="module")
def jd_dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(generate_dataset(cfg, 600, seed=1), cfg.operations, min_support=2, name="jd")


@pytest.fixture(scope="module")
def trivago_dataset():
    cfg = trivago_config()
    return prepare_dataset(generate_dataset(cfg, 600, seed=1), cfg.operations, min_support=2, name="trivago")


class TestSPop:
    def test_session_items_ranked_first(self, jd_dataset):
        spop = SPop().fit(jd_dataset)
        ex = MacroSession([5, 9, 5], [[0], [0], [0]], target=1)
        scores = spop.score_batch(collate([ex]))[0]
        # Item 5 appears twice, item 9 once; both beat everything else.
        assert scores[4] > scores[8] > max(
            s for i, s in enumerate(scores) if i not in (4, 8)
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SPop().score_batch(collate([MacroSession([1], [[0]], target=2)]))

    def test_popularity_fallback_breaks_ties(self, jd_dataset):
        spop = SPop(popularity_fallback=True).fit(jd_dataset)
        ex = MacroSession([1], [[0]], target=2)
        scores = spop.score_batch(collate([ex]))[0]
        others = np.delete(scores, 0)
        assert len(np.unique(others)) > 1  # popularity spreads the tail

    def test_default_zero_outside_session(self, jd_dataset):
        spop = SPop().fit(jd_dataset)
        ex = MacroSession([1], [[0]], target=2)
        scores = spop.score_batch(collate([ex]))[0]
        assert np.allclose(np.delete(scores, 0), 0.0)

    def test_fails_in_exploration_regime(self, trivago_dataset):
        """The paper: S-POP H@K = exactly 0 on trivago."""
        from repro.eval import evaluate_scores

        spop = SPop().fit(trivago_dataset)
        loader = DataLoader(trivago_dataset.test, batch_size=128)
        scores, targets = [], []
        for b in loader:
            scores.append(spop.score_batch(b))
            targets.append(b.target_classes)
        metrics = evaluate_scores(np.concatenate(scores), np.concatenate(targets), ks=(20,))
        assert metrics["H@20"] < 7.0  # only the ~5% in-session repeats can hit

    def test_works_in_repeat_regime(self, jd_dataset):
        from repro.eval import evaluate_scores

        spop = SPop().fit(jd_dataset)
        loader = DataLoader(jd_dataset.test, batch_size=128)
        scores, targets = [], []
        for b in loader:
            scores.append(spop.score_batch(b))
            targets.append(b.target_classes)
        metrics = evaluate_scores(np.concatenate(scores), np.concatenate(targets), ks=(20,))
        assert metrics["H@20"] > 15.0


class TestSKNN:
    def test_scores_shape(self, jd_dataset):
        sknn = SKNN(k=20, sample_size=200).fit(jd_dataset)
        batch = next(iter(DataLoader(jd_dataset.test, batch_size=8)))
        assert sknn.score_batch(batch).shape == (8, jd_dataset.num_items)

    def test_neighbour_transfer(self):
        """Items co-occurring with the query session get positive scores."""
        cfg = jd_appliances_config()
        ds = prepare_dataset(generate_dataset(cfg, 400, seed=3), cfg.operations, min_support=2)
        sknn = SKNN(k=10).fit(ds)
        train_ex = ds.train[0]
        scores = sknn.score_batch(collate([train_ex]))[0]
        # The training session itself is a neighbour, so its target scores > 0.
        assert scores[train_ex.target - 1] > 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SKNN().score_batch(collate([MacroSession([1], [[0]], target=2)]))

    def test_beats_random_on_test(self, jd_dataset):
        from repro.eval import evaluate_scores

        sknn = SKNN(k=50).fit(jd_dataset)
        loader = DataLoader(jd_dataset.test, batch_size=128)
        scores, targets = [], []
        for b in loader:
            scores.append(sknn.score_batch(b))
            targets.append(b.target_classes)
        metrics = evaluate_scores(np.concatenate(scores), np.concatenate(targets), ks=(20,))
        random_h20 = 20 / jd_dataset.num_items * 100
        assert metrics["H@20"] > random_h20 * 3
