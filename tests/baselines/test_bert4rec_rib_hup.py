"""Behavioral tests specific to BERT4Rec, RIB, and HUP."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.baselines import BERT4Rec, HUP, RIB
from repro.data import MacroSession, collate


class TestBERT4Rec:
    def test_bidirectional_context(self):
        """Changing the FIRST item must change the [MASK] prediction."""
        model = BERT4Rec(20, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2, 3], [[0]] * 3, target=4)])
        b = collate([MacroSession([9, 2, 3], [[0]] * 3, target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_mask_inserted_per_session_length(self):
        """Each session's [MASK] sits right after its own last item."""
        model = BERT4Rec(20, dim=8, dropout=0.0)
        model.eval()
        short = MacroSession([3], [[0]], target=1)
        long = MacroSession([2, 4, 6], [[0]] * 3, target=1)
        with no_grad():
            alone = model(collate([short])).data[0]
            mixed = model(collate([short, long])).data[0]
        assert np.allclose(alone, mixed, atol=1e-8)

    def test_position_embeddings_give_order(self):
        model = BERT4Rec(20, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2], [[0], [0]], target=4)])
        b = collate([MacroSession([2, 1], [[0], [0]], target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_max_len_respected(self):
        model = BERT4Rec(20, dim=8, max_len=8)
        batch = collate([MacroSession(list(range(1, 8)), [[0]] * 7, target=9)])
        model.eval()
        with no_grad():
            assert np.isfinite(model(batch).data).all()


class TestRIB:
    def test_micro_sequence_consumed(self):
        """RIB runs over the flat micro view: extra ops change scores."""
        model = RIB(20, 5, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2], [[0], [1]], target=4)])
        b = collate([MacroSession([1, 2], [[0, 2], [1]], target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_attention_pools_all_steps(self):
        model = RIB(20, 5, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2, 3], [[0]] * 3, target=4)])
        b = collate([MacroSession([9, 2, 3], [[0]] * 3, target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)


class TestHUP:
    def test_hierarchy_op_level_feeds_item_level(self):
        model = HUP(20, 5, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2], [[0, 1], [2]], target=4)])
        b = collate([MacroSession([1, 2], [[1, 0], [2]], target=4)])  # op order flip
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_empty_vs_rich_chains_differ(self):
        model = HUP(20, 5, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2], [[0], [0]], target=4)])
        b = collate([MacroSession([1, 2], [[0, 3, 4], [0]], target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_item_gru_order_sensitivity(self):
        model = HUP(20, 5, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2, 3], [[0]] * 3, target=4)])
        b = collate([MacroSession([3, 2, 1], [[0]] * 3, target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)
