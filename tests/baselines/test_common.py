"""Unit tests for the shared GNN-baseline building blocks."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines.common import (
    SessionGGNN,
    SoftAttentionReadout,
    last_position_rep,
    normalized_adjacency,
)
from repro.data import MacroSession, collate
from repro.graphs import BatchGraph


def graph_of(items):
    batch = collate([MacroSession(items, [[0]] * len(items), target=9)])
    return batch, BatchGraph.from_batch(batch)


class TestNormalizedAdjacency:
    def test_simple_chain(self):
        _, g = graph_of([1, 2, 3])
        a_in, a_out = normalized_adjacency(g)
        # Node 0 -> node 1 -> node 2 with unit normalized weights.
        assert a_out[0, 0, 1] == 1.0
        assert a_out[0, 1, 2] == 1.0
        assert a_in[0, 1, 0] == 1.0
        assert a_in[0, 2, 1] == 1.0

    def test_out_degree_normalization(self):
        # 1 -> 2, 1 -> 3 (via revisit 2 -> 1): session [1, 2, 1, 3]
        _, g = graph_of([1, 2, 1, 3])
        _, a_out = normalized_adjacency(g)
        node1 = 0
        # Node 1 has two outgoing edges, each weighted 1/2.
        assert a_out[0, node1, 1] == pytest.approx(0.5)
        assert a_out[0, node1, 2] == pytest.approx(0.5)

    def test_parallel_edges_collapse_with_weight(self):
        # SR-GNN's simple-graph view: 2->3 twice still normalizes to 1 total.
        _, g = graph_of([1, 2, 3, 2, 3])
        _, a_out = normalized_adjacency(g)
        node2 = 1
        assert a_out[0, node2].sum() == pytest.approx(1.0)

    def test_rows_normalized(self):
        _, g = graph_of([1, 2, 3, 1, 4, 2])
        a_in, a_out = normalized_adjacency(g)
        for mat in (a_in[0], a_out[0]):
            sums = mat.sum(axis=1)
            assert ((sums < 1.0 + 1e-9)).all()


class TestSessionGGNN:
    def test_forward_shape_and_mask(self):
        rng = np.random.default_rng(0)
        ggnn = SessionGGNN(8, rng=rng)
        batch = collate(
            [
                MacroSession([1, 2, 3], [[0]] * 3, target=9),
                MacroSession([4], [[0]], target=9),
            ]
        )
        g = BatchGraph.from_batch(batch)
        nodes = Tensor(rng.normal(size=(2, 3, 8)))
        out = ggnn(nodes, g)
        assert out.shape == (2, 3, 8)
        assert np.allclose(out.data[1, 1:], 0.0)  # padded node slots

    def test_propagation_changes_connected_nodes(self):
        rng = np.random.default_rng(1)
        ggnn = SessionGGNN(8, rng=rng)
        _, g = graph_of([1, 2])
        nodes = rng.normal(size=(1, 2, 8))
        out1 = ggnn(Tensor(nodes), g)
        nodes2 = nodes.copy()
        nodes2[0, 0] += 1.0  # perturb node 1
        out2 = ggnn(Tensor(nodes2), g)
        # Node 2 receives a message from node 1, so its state changes too.
        assert not np.allclose(out1.data[0, 1], out2.data[0, 1])


class TestSoftAttentionReadout:
    def test_output_shape(self):
        rng = np.random.default_rng(2)
        readout = SoftAttentionReadout(8, rng=rng)
        seq = Tensor(rng.normal(size=(3, 5, 8)))
        last = Tensor(rng.normal(size=(3, 8)))
        mask = np.ones((3, 5))
        assert readout(seq, last, mask).shape == (3, 8)

    def test_masked_positions_ignored(self):
        rng = np.random.default_rng(3)
        readout = SoftAttentionReadout(8, rng=rng)
        seq = rng.normal(size=(1, 4, 8))
        last = Tensor(seq[:, 1])
        mask = np.array([[1, 1, 0, 0]], dtype=float)
        out1 = readout(Tensor(seq), last, mask)
        seq2 = seq.copy()
        seq2[0, 2:] += 99.0
        out2 = readout(Tensor(seq2), last, mask)
        assert np.allclose(out1.data, out2.data)

    def test_pool_only_mode(self):
        rng = np.random.default_rng(4)
        readout = SoftAttentionReadout(8, concat_last=False, rng=rng)
        assert readout.w3 is None
        seq = Tensor(rng.normal(size=(2, 3, 8)))
        last = Tensor(rng.normal(size=(2, 8)))
        assert readout(seq, last, np.ones((2, 3))).shape == (2, 8)


class TestLastPositionRep:
    def test_gathers_final_valid(self):
        seq = Tensor(np.arange(24, dtype=float).reshape(2, 3, 4))
        mask = np.array([[1, 1, 0], [1, 1, 1]], dtype=float)
        out = last_position_rep(seq, mask)
        assert np.allclose(out.data[0], seq.data[0, 1])
        assert np.allclose(out.data[1], seq.data[1, 2])
