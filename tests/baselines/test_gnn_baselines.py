"""Behavioral tests specific to the GNN baselines (SR-GNN, GC-SAN, SGNN-HN, MKM-SR)."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.baselines import GCSAN, MKMSR, SGNNHN, SRGNN
from repro.data import MacroSession, collate
from repro.graphs import BatchGraph


def ab_pair(items_a, items_b, ops=None, target=4):
    ops_a = ops or [[0]] * len(items_a)
    ops_b = ops or [[0]] * len(items_b)
    return (
        collate([MacroSession(items_a, ops_a, target=target)]),
        collate([MacroSession(items_b, ops_b, target=target)]),
    )


class TestSRGNN:
    def test_graph_structure_matters(self):
        """Same item multiset, different transitions -> different scores."""
        model = SRGNN(20, dim=8, dropout=0.0)
        model.eval()
        a, b = ab_pair([1, 2, 3, 4], [1, 3, 2, 4])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_accepts_precomputed_graph(self):
        model = SRGNN(20, dim=8, dropout=0.0)
        model.eval()
        batch = collate([MacroSession([1, 2, 1], [[0]] * 3, target=4)])
        graph = BatchGraph.from_batch(batch)
        with no_grad():
            assert np.allclose(model(batch).data, model(batch, graph=graph).data)


class TestGCSAN:
    def test_omega_interpolation(self):
        """omega=1 uses only the attention path, omega=0 only the GGNN path."""
        batch = collate([MacroSession([1, 2, 3], [[0]] * 3, target=4)])
        with no_grad():
            full = GCSAN(20, dim=8, omega=1.0, dropout=0.0)
            full.eval()
            a = full(batch).data
            none = GCSAN(20, dim=8, omega=0.0, dropout=0.0)
            none.eval()
            none.load_state_dict(full.state_dict())
            b = none(batch).data
        assert not np.allclose(a, b)

    def test_multiple_blocks(self):
        model = GCSAN(20, dim=8, num_blocks=3, dropout=0.0)
        batch = collate([MacroSession([1, 2], [[0], [0]], target=4)])
        model.eval()
        with no_grad():
            assert np.isfinite(model(batch).data).all()


class TestSGNNHN:
    def test_star_gives_global_context(self):
        """Changing a distant item influences the last item's readout."""
        model = SGNNHN(30, dim=8, dropout=0.0)
        model.eval()
        a, b = ab_pair([1, 2, 3, 4, 5], [9, 2, 3, 4, 5])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_wk_scales_score_range(self):
        batch = collate([MacroSession([1, 2], [[0], [0]], target=4)])
        with no_grad():
            small = SGNNHN(20, dim=8, w_k=1.0, dropout=0.0)
            small.eval()
            large = SGNNHN(20, dim=8, w_k=12.0, dropout=0.0)
            large.eval()
            large.load_state_dict(small.state_dict())
            a = np.abs(small(batch).data).max()
            b = np.abs(large(batch).data).max()
        assert b == pytest.approx(a * 12.0, rel=1e-9)


class TestMKMSR:
    def test_operations_enter_via_gru(self):
        model = MKMSR(20, 5, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2], [[0], [1]], target=4)])
        b = collate([MacroSession([1, 2], [[2], [3]], target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_operation_order_matters(self):
        """MKM-SR's op-GRU is sequential, so op order changes scores."""
        model = MKMSR(20, 5, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1], [[0, 1]], target=4)])
        b = collate([MacroSession([1], [[1, 0]], target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)
