"""Behavioral tests specific to NARM and STAMP."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.baselines import NARM, STAMP
from repro.data import MacroSession, collate


@pytest.fixture
def batch():
    return collate(
        [
            MacroSession([1, 2, 3], [[0], [0], [0]], target=4),
            MacroSession([5], [[0]], target=6),
        ]
    )


class TestNARM:
    def test_recency_matters(self):
        """Swapping the last item changes the prediction (local encoder)."""
        model = NARM(20, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2, 3], [[0]] * 3, target=4)])
        b = collate([MacroSession([1, 3, 2], [[0]] * 3, target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_bilinear_decoder_dimensions(self):
        model = NARM(20, dim=8)
        # decoder maps [h_t ; c_local] (2d) -> d
        assert model.b.weight.shape == (16, 8)

    def test_dropout_only_in_training(self, batch):
        model = NARM(20, dim=8, dropout=0.5)
        model.eval()
        with no_grad():
            a = model(batch).data
            b = model(batch).data
        assert np.allclose(a, b)

    def test_padding_attention_masked(self):
        model = NARM(20, dim=8, dropout=0.0)
        model.eval()
        short = MacroSession([3, 7], [[0], [0]], target=1)
        huge = MacroSession([2, 4, 6, 8, 9, 10], [[0]] * 6, target=1)
        with no_grad():
            alone = model(collate([short])).data[0]
            padded = model(collate([short, huge])).data[0]
        assert np.allclose(alone, padded, atol=1e-10)


class TestSTAMP:
    def test_trilinear_composition(self):
        """Scores come from (h_s * h_t) . emb — both interests matter."""
        model = STAMP(20, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2, 9], [[0]] * 3, target=4)])
        b = collate([MacroSession([1, 2, 10], [[0]] * 3, target=4)])  # same memory-ish, new last click
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_session_mean_used(self):
        """Changing a non-final item shifts the memory m_s and the scores."""
        model = STAMP(20, dim=8, dropout=0.0)
        model.eval()
        a = collate([MacroSession([1, 2, 3], [[0]] * 3, target=4)])
        b = collate([MacroSession([7, 2, 3], [[0]] * 3, target=4)])
        with no_grad():
            assert not np.allclose(model(a).data, model(b).data)

    def test_single_item_session_stable(self):
        model = STAMP(20, dim=8)
        model.eval()
        with no_grad():
            scores = model(collate([MacroSession([5], [[0]], target=1)])).data
        assert np.isfinite(scores).all()
