"""Training smoke tests: every neural baseline must actually learn.

Two epochs on a tiny corpus — the loss must drop and the metrics must beat
chance. Catches wiring bugs (dead gradients, wrong masks) that pure
forward/backward shape tests miss.
"""

import numpy as np
import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner

NEURAL = ["NARM", "STAMP", "SR-GNN", "GC-SAN", "BERT4Rec", "SGNN-HN", "RIB", "HUP", "MKM-SR"]


@pytest.fixture(scope="module")
def runner():
    cfg = jd_appliances_config()
    dataset = prepare_dataset(
        generate_dataset(cfg, 500, seed=81), cfg.operations, min_support=2, name="jd"
    )
    return ExperimentRunner(dataset, ExperimentConfig(dim=12, epochs=4, lr=0.01, seed=2))


@pytest.mark.parametrize("name", NEURAL)
def test_baseline_learns(runner, name):
    result = runner.run(name)
    trainer = result.recommender.trainer
    losses = [h.train_loss for h in trainer.history]
    assert losses[-1] < losses[0], f"{name} loss did not decrease: {losses}"
    random_h20 = 20 / runner.dataset.num_items * 100
    # Slow starters (trilinear STAMP, normalized-softmax SGNN-HN) clear a
    # lower bar in this few-epoch smoke test than the fast GNNs would.
    assert result.metrics["H@20"] > 1.2 * random_h20, (
        f"{name} no better than chance: {result.metrics['H@20']:.2f}"
    )
