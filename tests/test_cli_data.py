"""CLI surface of the packed data pipeline: ``repro data pack/inspect``,
training from ``.rpk`` files, and the ``--packed/--prefetch`` train flags."""


import pytest

from repro.cli import build_parser, main
from repro.data.packed import is_packed_file, load_packed, packed_fingerprint


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """generate -> prepare -> pack (both routes) once for the module."""
    root = tmp_path_factory.mktemp("cli_data")
    sessions = root / "sessions.jsonl"
    dataset = root / "dataset.json"
    packed = root / "dataset.rpk"
    assert main([
        "generate", "--config", "jd-appliances", "--sessions", "250",
        "--seed", "5", "--out", str(sessions),
    ]) == 0
    assert main([
        "prepare", "--config", "jd-appliances", "--input", str(sessions),
        "--out", str(dataset), "--min-support", "2",
    ]) == 0
    assert main(["data", "pack", str(dataset), str(packed)]) == 0
    return root, sessions, dataset, packed


class TestParser:
    def test_pack_args(self):
        args = build_parser().parse_args(["data", "pack", "in.json", "out.rpk"])
        assert args.data_command == "pack"
        assert args.input == "in.json"
        assert args.out == "out.rpk"
        assert args.config is None
        assert not args.jsonl

    def test_inspect_args(self):
        args = build_parser().parse_args(["data", "inspect", "x.rpk"])
        assert args.data_command == "inspect"

    def test_train_packed_flags(self):
        base = ["train", "--dataset", "d.json", "--model", "EMBSR"]
        args = build_parser().parse_args(base)
        assert not args.packed and not args.prefetch
        args = build_parser().parse_args(base + ["--packed", "--prefetch"])
        assert args.packed and args.prefetch


class TestPack:
    def test_pack_produces_loadable_file(self, artifacts):
        _, _, _, packed_path = artifacts
        assert is_packed_file(packed_path)
        packed = load_packed(packed_path)
        assert len(packed.train) > 0
        assert packed.fingerprint == packed_fingerprint(packed)

    def test_pack_jsonl_route_matches_prepared_route(self, artifacts, capsys):
        root, sessions, _, packed_path = artifacts
        out2 = root / "from_jsonl.rpk"
        assert main([
            "data", "pack", str(sessions), str(out2),
            "--config", "jd-appliances", "--min-support", "2",
        ]) == 0
        capsys.readouterr()
        a = load_packed(packed_path)
        b = load_packed(out2)
        # Same raw sessions, same preprocessing parameters: the streaming
        # JSONL route must produce the identical logical dataset.
        assert a.fingerprint == b.fingerprint != ""

    def test_pack_jsonl_without_config_fails(self, tmp_path, capsys):
        src = tmp_path / "s.jsonl"
        src.write_text("")
        assert main(["data", "pack", str(src), str(tmp_path / "o.rpk")]) == 1
        assert "--config" in capsys.readouterr().err

    def test_inspect_reports_header(self, artifacts, capsys):
        _, _, _, packed_path = artifacts
        assert main(["data", "inspect", str(packed_path)]) == 0
        out = capsys.readouterr().out
        assert "format v1" in out
        assert "train" in out and "validation" in out and "test" in out
        assert "fingerprint" in out

    def test_inspect_rejects_non_packed(self, artifacts, capsys):
        _, _, dataset, _ = artifacts
        assert main(["data", "inspect", str(dataset)]) == 1
        assert "cannot inspect" in capsys.readouterr().err


class TestTrain:
    def test_train_from_rpk_file(self, artifacts, capsys):
        """``--dataset x.rpk`` is sniffed and loaded as packed."""
        _, _, _, packed_path = artifacts
        assert main([
            "train", "--dataset", str(packed_path), "--model", "SKNN",
        ]) == 0
        assert "SKNN" in capsys.readouterr().out

    def test_train_packed_prefetch_matches_object_path(self, artifacts, capsys):
        """--packed --prefetch changes wall-clock, never the metrics."""
        _, _, dataset, _ = artifacts

        def run(extra):
            assert main([
                "train", "--dataset", str(dataset), "--model", "STAMP",
                "--epochs", "1", "--dim", "8", *extra,
            ]) == 0
            out = capsys.readouterr().out
            return next(line for line in out.splitlines() if "test metrics" in line)

        assert run([]) == run(["--packed", "--prefetch"])
