"""Tests for table rendering utilities."""

from repro.utils import render_markdown, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["name", "v"], [["a", 1.5], ["longer", 22.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        header, sep, row1, row2 = lines
        assert header.index("|") == row1.index("|") == row2.index("|")

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159]])
        assert "3.14" in out and "3.1416" not in out

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_mixed_types(self):
        out = render_table(["x"], [["text"], [42], [1.0]])
        assert "text" in out and "42" in out and "1.00" in out


class TestRenderMarkdown:
    def test_structure(self):
        out = render_markdown(["a", "b"], [[1, 2]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_floats_rounded(self):
        out = render_markdown(["m"], [[12.3456]])
        assert "| 12.35 |" in out
