"""API-surface tests: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.autograd",
    "repro.nn",
    "repro.data",
    "repro.graphs",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.registry",
    "repro.artifacts",
    "repro.perf",
    "repro.perf.profiler",
    "repro.perf.fused",
    "repro.parallel",
    "repro.parallel.shm",
    "repro.parallel.sharding",
    "repro.parallel.engine",
    "repro.parallel.pool",
    "repro.utils",
    "repro.serve",
    "repro.serving",
    "repro.serving.metrics",
    "repro.serving.cache",
    "repro.serving.batcher",
    "repro.serving.admission",
    "repro.serving.gateway",
    "repro.serving.loadgen",
    "repro.deploy",
    "repro.deploy.buffer",
    "repro.deploy.canary",
    "repro.deploy.comparator",
    "repro.deploy.lineage",
    "repro.deploy.manager",
    "repro.deploy.trainer",
    "repro.retrieval",
    "repro.retrieval.kmeans",
    "repro.retrieval.pq",
    "repro.retrieval.index",
    "repro.retrieval.factorize",
    "repro.retrieval.pipeline",
    "repro.retrieval.evaluate",
    "repro.cli",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__ and module.__doc__.strip(), f"{package} lacks a docstring"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_classes_documented(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__ and obj.__doc__.strip(), f"{package}.{name} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_no_accidental_torch_dependency():
    """The whole point: nothing in the library may import torch."""
    import sys

    for package in PACKAGES:
        importlib.import_module(package)
    assert "torch" not in sys.modules
