"""CLI coverage of the training-objective surface (docs/objectives.md)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def pipeline_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_obj")
    sessions = root / "sessions.jsonl"
    dataset = root / "dataset.json"
    assert main([
        "generate", "--config", "jd-appliances", "--sessions", "250",
        "--seed", "5", "--out", str(sessions),
    ]) == 0
    assert main([
        "prepare", "--config", "jd-appliances", "--input", str(sessions),
        "--out", str(dataset), "--min-support", "2",
    ]) == 0
    return root, dataset


class TestParser:
    def test_objective_args_default_to_registry_deferral(self):
        args = build_parser().parse_args(["train", "--dataset", "d.json"])
        assert args.objective is None
        assert args.cl_weight is None

    def test_objective_args_parse(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "d.json", "--objective", "ssl", "--cl-weight", "0.25"]
        )
        assert args.objective == "ssl"
        assert args.cl_weight == 0.25
        args = build_parser().parse_args(
            ["compare", "--dataset", "d.json", "--models", "EMBSR", "--objective", "op-aux"]
        )
        assert args.objective == "op-aux"

    def test_unknown_objective_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "d.json", "--objective", "nope"]
            )


class TestModelsListing:
    def test_objective_variants_and_sweep_pattern_listed(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "EMBSR-SSL" in out
        assert "MKM-SR-OP" in out
        assert "EMBSR-SSL-cl=" in out  # the sweep-pattern footer


class TestTraining:
    def test_train_embsr_ssl_end_to_end(self, pipeline_files, capsys):
        root, dataset = pipeline_files
        artifact = root / "ssl.npz"
        assert main([
            "train", "--dataset", str(dataset), "--model", "EMBSR-SSL",
            "--dim", "12", "--epochs", "1", "--seed", "5",
            "--artifact", str(artifact),
        ]) == 0
        assert artifact.exists()
        assert "EMBSR-SSL" in capsys.readouterr().out

    def test_explicit_objective_override(self, pipeline_files, capsys):
        _, dataset = pipeline_files
        assert main([
            "train", "--dataset", str(dataset), "--model", "MKM-SR",
            "--dim", "12", "--epochs", "1", "--seed", "5",
            "--objective", "op-aux", "--cl-weight", "0.3",
        ]) == 0
        assert "MKM-SR" in capsys.readouterr().out

    def test_profile_prints_component_losses(self, pipeline_files, capsys):
        _, dataset = pipeline_files
        assert main([
            "profile", "--dataset", str(dataset), "--model", "EMBSR-SSL",
            "--dim", "12", "--steps", "2", "--batch-size", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "objective ce+infonce" in out
        assert "infonce=" in out
