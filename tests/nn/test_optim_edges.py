"""Edge-case tests for optimizers (None grads, shared params, decay)."""

import numpy as np
import pytest

from repro import nn


class TestNoneGradients:
    def test_adam_skips_gradless_params(self):
        a = nn.Parameter(np.array([1.0]))
        b = nn.Parameter(np.array([2.0]))
        opt = nn.Adam([a, b], lr=0.1)
        (a * 3.0).backward()  # only a gets a gradient
        opt.step()
        assert a.data[0] != 1.0
        assert b.data[0] == 2.0

    def test_sgd_skips_gradless_params(self):
        a = nn.Parameter(np.array([1.0]))
        b = nn.Parameter(np.array([2.0]))
        opt = nn.SGD([a, b], lr=0.1)
        (a * 3.0).backward()
        opt.step()
        assert b.data[0] == 2.0

    def test_zero_grad_clears_all(self):
        a = nn.Parameter(np.array([1.0]))
        opt = nn.Adam([a], lr=0.1)
        (a * 2.0).backward()
        opt.zero_grad()
        assert a.grad is None


class TestAdamState:
    def test_momentum_accumulates_across_steps(self):
        p = nn.Parameter(np.array([10.0]))
        opt = nn.Adam([p], lr=0.1)
        deltas = []
        for _ in range(3):
            opt.zero_grad()
            (p * 1.0).backward()  # constant gradient 1
            before = p.data.copy()
            opt.step()
            deltas.append(abs((p.data - before).item()))
        # With constant gradients Adam's step stays ~lr (bias-corrected).
        for d in deltas:
            assert d == pytest.approx(0.1, rel=0.05)

    def test_bias_correction_first_step(self):
        p = nn.Parameter(np.array([0.0]))
        opt = nn.Adam([p], lr=0.5)
        (p * 1.0).backward()
        opt.step()
        # First Adam step with g=1 is exactly -lr (up to eps).
        assert p.data.item() == pytest.approx(-0.5, rel=1e-6)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = nn.Parameter(np.array([1.0]))
        p.grad = np.array([0.3])
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.3)
        assert p.grad[0] == pytest.approx(0.3)

    def test_handles_all_none(self):
        p = nn.Parameter(np.array([1.0]))
        assert nn.clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_multi_param_global_norm(self):
        a = nn.Parameter(np.array([3.0]))
        b = nn.Parameter(np.array([4.0]))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = nn.clip_grad_norm([a, b], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)
