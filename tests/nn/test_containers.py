"""Tests for Sequential and ModuleList containers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(6)


class TestSequential:
    def test_applies_in_order(self, rng):
        a = nn.Linear(4, 8, rng=rng)
        b = nn.Linear(8, 2, rng=rng)
        seq = nn.Sequential(a, b)
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(seq(x).data, b(a(x)).data)

    def test_len_and_iter(self, rng):
        seq = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.LayerNorm(2))
        assert len(seq) == 2
        assert len(list(iter(seq))) == 2

    def test_parameters_collected(self, rng):
        seq = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.Linear(2, 2, rng=rng))
        assert len(list(seq.parameters())) == 4

    def test_empty_sequential_is_identity(self):
        seq = nn.Sequential()
        x = Tensor(np.ones((2, 2)))
        assert seq(x) is x


class TestModuleList:
    def test_indexing(self, rng):
        layers = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert layers[1] is layers.items[1]
        assert len(layers) == 3

    def test_append_registers_parameters(self, rng):
        layers = nn.ModuleList()
        layers.append(nn.Linear(2, 2, rng=rng))
        assert len(list(layers.parameters())) == 2

    def test_train_eval_propagation(self, rng):
        layers = nn.ModuleList([nn.Dropout(0.5, rng=rng)])
        layers.eval()
        assert not layers[0].training
        layers.train()
        assert layers[0].training

    def test_named_parameters_have_indices(self, rng):
        layers = nn.ModuleList([nn.Linear(2, 2, rng=rng)])

        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.blocks = layers

        names = [name for name, _ in Net().named_parameters()]
        assert any(".0." in name for name in names)
