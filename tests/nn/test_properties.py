"""Property-based tests for nn-layer invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.autograd import Tensor, no_grad

settings.register_profile("repro-nn", deadline=None, max_examples=25)
settings.load_profile("repro-nn")


class TestGRUMaskProperties:
    @given(st.integers(1, 5), st.integers(0, 3), st.integers(0, 2**31 - 1))
    def test_padding_content_irrelevant(self, valid_len, pad_len, seed):
        """Whatever sits in padded steps must not change the final state."""
        rng = np.random.default_rng(seed)
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        total = valid_len + pad_len
        x = rng.normal(size=(1, total, 3))
        mask = np.zeros((1, total))
        mask[0, :valid_len] = 1.0
        with no_grad():
            _, final1 = gru(Tensor(x), mask)
            x2 = x.copy()
            x2[0, valid_len:] = rng.normal(size=(pad_len, 3)) * 100
            _, final2 = gru(Tensor(x2), mask)
        assert np.allclose(final1.data, final2.data)

    @given(st.integers(1, 6), st.integers(0, 2**31 - 1))
    def test_final_state_equals_output_at_last_valid(self, valid_len, seed):
        rng = np.random.default_rng(seed)
        gru = nn.GRU(2, 3, rng=np.random.default_rng(1))
        x = Tensor(rng.normal(size=(1, valid_len + 2, 2)))
        mask = np.zeros((1, valid_len + 2))
        mask[0, :valid_len] = 1.0
        with no_grad():
            outs, final = gru(x, mask)
        assert np.allclose(final.data[0], outs.data[0, valid_len - 1])


class TestLayerNormProperties:
    @given(st.integers(2, 16), st.floats(0.5, 10.0), st.integers(0, 2**31 - 1))
    def test_scale_invariance(self, dim, scale, seed):
        """LayerNorm is scale-invariant up to the eps regularizer.

        Rows with tiny variance are excluded: there the eps term dominates
        and exact invariance genuinely does not hold.
        """
        from hypothesis import assume

        rng = np.random.default_rng(seed)
        ln = nn.LayerNorm(dim)
        x = rng.normal(size=(3, dim)) + 1.0
        assume(x.var(axis=-1).min() > 0.1)
        with no_grad():
            a = ln(Tensor(x)).data
            b = ln(Tensor(x * scale)).data
        assert np.allclose(a, b, atol=1e-3)

    @given(st.integers(2, 16), st.floats(-50, 50), st.integers(0, 2**31 - 1))
    def test_shift_invariance(self, dim, shift, seed):
        rng = np.random.default_rng(seed)
        ln = nn.LayerNorm(dim)
        x = rng.normal(size=(2, dim))
        with no_grad():
            a = ln(Tensor(x)).data
            b = ln(Tensor(x + shift)).data
        assert np.allclose(a, b, atol=1e-6)


class TestEmbeddingProperties:
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=20))
    def test_lookup_consistency(self, ids):
        emb = nn.Embedding(10, 4, rng=np.random.default_rng(2))
        out = emb(np.array(ids))
        for i, idx in enumerate(ids):
            assert np.allclose(out.data[i], emb.weight.data[idx])

    @given(st.integers(1, 8))
    def test_gradient_counts_repetitions(self, repeats):
        emb = nn.Embedding(5, 3, rng=np.random.default_rng(3))
        out = emb(np.full(repeats, 2))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], float(repeats))


class TestOptimizerProperties:
    @given(st.floats(0.01, 0.3), st.integers(0, 2**31 - 1))
    def test_adam_step_bounded_by_lr(self, lr, seed):
        """Adam's per-step parameter change is approximately bounded by lr."""
        rng = np.random.default_rng(seed)
        p = nn.Parameter(rng.normal(size=5))
        before = p.data.copy()
        opt = nn.Adam([p], lr=lr)
        (p * rng.normal(size=5)).sum().backward()
        opt.step()
        assert np.abs(p.data - before).max() <= lr * 1.01
