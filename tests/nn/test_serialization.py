"""Tests for .npz checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.core import EMBSRConfig, build_embsr
from repro.data import MacroSession, collate


class TestCheckpoint:
    def test_roundtrip_linear(self, tmp_path):
        rng = np.random.default_rng(0)
        a = nn.Linear(4, 3, rng=rng)
        path = tmp_path / "lin.npz"
        nn.save_checkpoint(a, path)
        b = nn.Linear(4, 3, rng=np.random.default_rng(99))
        nn.load_checkpoint(b, path)
        assert np.allclose(a.weight.data, b.weight.data)
        assert np.allclose(a.bias.data, b.bias.data)

    def test_roundtrip_full_embsr(self, tmp_path):
        config = EMBSRConfig(num_items=20, num_ops=4, dim=8, seed=1)
        a = build_embsr(config)
        batch = collate([MacroSession([1, 2, 3], [[1], [2, 3], [1]], target=4)])
        a.eval()
        from repro.autograd import no_grad

        with no_grad():
            expected = a(batch).data
        path = tmp_path / "embsr.npz"
        nn.save_checkpoint(a, path)

        b = build_embsr(EMBSRConfig(num_items=20, num_ops=4, dim=8, seed=42))
        nn.load_checkpoint(b, path)
        b.eval()
        with no_grad():
            actual = b(batch).data
        assert np.allclose(expected, actual)

    def test_architecture_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        a = nn.Linear(4, 3, rng=rng)
        path = tmp_path / "lin.npz"
        nn.save_checkpoint(a, path)
        wrong = nn.Linear(5, 3, rng=rng)
        with pytest.raises(ValueError):
            nn.load_checkpoint(wrong, path)
        different = nn.GRUCell(4, 3, rng=rng)
        with pytest.raises(KeyError):
            nn.load_checkpoint(different, path)

    def test_empty_model_rejected(self, tmp_path):
        class Empty(nn.Module):
            pass

        with pytest.raises(ValueError):
            nn.save_checkpoint(Empty(), tmp_path / "e.npz")
