"""Tests for weight-initialization schemes."""

import numpy as np
import pytest

from repro.nn import normal, scaled_uniform, xavier_uniform, zeros


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestScaledUniform:
    def test_bounds_follow_paper(self, rng):
        """MKM-SR / paper Sec. V-A4: uniform in ±1/sqrt(d)."""
        d = 64
        w = scaled_uniform(rng, (1000, d), d)
        bound = 1.0 / np.sqrt(d)
        assert w.max() <= bound and w.min() >= -bound
        assert abs(w.mean()) < bound / 10

    def test_scale_dim_independent_of_shape(self, rng):
        w = scaled_uniform(rng, (10, 20), 100)
        assert np.abs(w).max() <= 0.1


class TestXavier:
    def test_bound(self, rng):
        w = xavier_uniform(rng, (30, 50))
        bound = np.sqrt(6.0 / 80)
        assert np.abs(w).max() <= bound

    def test_variance_scaling(self, rng):
        w = xavier_uniform(rng, (400, 400))
        # Var(U(-b, b)) = b^2 / 3 = 2 / (fan_in + fan_out)
        assert w.var() == pytest.approx(2.0 / 800, rel=0.1)


class TestOthers:
    def test_normal_std(self, rng):
        w = normal(rng, (5000,), std=0.02)
        assert w.std() == pytest.approx(0.02, rel=0.1)

    def test_zeros(self):
        assert np.count_nonzero(zeros((3, 4))) == 0
