"""Unit tests for GRU cell and masked sequence GRU."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestGRUCell:
    def test_output_shape(self, rng):
        cell = nn.GRUCell(4, 6, rng=rng)
        out = cell(Tensor(rng.normal(size=(3, 4))), Tensor(np.zeros((3, 6))))
        assert out.shape == (3, 6)

    def test_gradcheck(self, rng):
        cell = nn.GRUCell(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        h = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        check_gradients(lambda x, h: cell(x, h), [x, h])

    def test_bounded_output(self, rng):
        cell = nn.GRUCell(4, 6, rng=rng)
        h = Tensor(np.zeros((3, 6)))
        for _ in range(50):
            h = cell(Tensor(rng.normal(size=(3, 4)) * 10), h)
        assert np.abs(h.data).max() <= 1.0 + 1e-9  # gated between tanh candidates


class TestGRU:
    def test_mask_freezes_state(self, rng):
        gru = nn.GRU(4, 5, rng=rng)
        x = Tensor(rng.normal(size=(2, 6, 4)))
        mask = np.array([[1, 1, 0, 0, 0, 0], [1, 1, 1, 1, 1, 1]], dtype=float)
        outs, final = gru(x, mask)
        # Sequence 0 ends at step 1; its final state equals output at step 1.
        assert np.allclose(final.data[0], outs.data[0, 1])
        # Padded steps keep the state frozen.
        assert np.allclose(outs.data[0, 2], outs.data[0, 1])

    def test_no_mask_runs_full_length(self, rng):
        gru = nn.GRU(3, 4, rng=rng)
        outs, final = gru(Tensor(rng.normal(size=(2, 5, 3))))
        assert outs.shape == (2, 5, 4)
        assert np.allclose(final.data, outs.data[:, -1])

    def test_h0_used(self, rng):
        gru = nn.GRU(3, 4, rng=rng)
        x = Tensor(rng.normal(size=(1, 2, 3)))
        h0 = Tensor(rng.normal(size=(1, 4)))
        _, with_h0 = gru(x, h0=h0)
        _, without = gru(x)
        assert not np.allclose(with_h0.data, without.data)

    def test_gradcheck_through_time(self, rng):
        gru = nn.GRU(2, 3, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 2)), requires_grad=True)
        mask = np.array([[1, 1, 0], [1, 1, 1]], dtype=float)
        check_gradients(lambda x: gru(x, mask)[1], [x])

    def test_padding_never_leaks_gradient(self, rng):
        gru = nn.GRU(2, 3, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 2)), requires_grad=True)
        mask = np.array([[1, 0, 0]], dtype=float)
        _, final = gru(x, mask)
        final.sum().backward()
        assert np.allclose(x.grad[0, 1:], 0.0)


class TestOptimizers:
    def test_sgd_converges_quadratic(self):
        p = nn.Parameter(np.array([3.0, -4.0]))
        opt = nn.SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            opt.zero_grad()
            ((p * p).sum()).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-4

    def test_adam_converges_quadratic(self):
        p = nn.Parameter(np.array([3.0, -4.0]))
        opt = nn.Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            ((p * p).sum()).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_clip_grad_norm(self):
        p = nn.Parameter(np.array([1.0, 1.0]))
        p.grad = np.array([30.0, 40.0])
        norm = nn.clip_grad_norm([p], max_norm=5.0)
        assert abs(norm - 50.0) < 1e-9
        assert abs(np.linalg.norm(p.grad) - 5.0) < 1e-9

    def test_step_lr_decay(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert abs(opt.lr - 0.1) < 1e-12
        sched.step()
        assert abs(opt.lr - 0.01) < 1e-12


class TestLoss:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.zeros(4, dtype=int))
        assert abs(loss.item() - np.log(10)) < 1e-9

    def test_cross_entropy_perfect(self):
        logits = np.full((2, 5), -100.0)
        logits[np.arange(2), [1, 3]] = 100.0
        loss = nn.cross_entropy(Tensor(logits), np.array([1, 3]))
        assert loss.item() < 1e-6

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        targets = np.array([0, 2, 5])
        from repro.autograd import check_gradients

        check_gradients(lambda l: nn.cross_entropy(l, targets).reshape(1), [logits])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(5, dtype=int))
