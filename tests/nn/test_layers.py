"""Unit tests for the nn layer library."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(4, 6, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 6)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 6, bias=False, rng=rng)
        assert layer.bias is None
        assert np.allclose(layer(Tensor(np.zeros((2, 4)))).data, 0.0)

    def test_gradcheck(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda x: layer(x).tanh(), [x])
        check_gradients(lambda w: (x.detach() @ w + layer.bias).sigmoid(), [layer.weight])

    def test_batched_input(self, rng):
        layer = nn.Linear(4, 6, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 4))))
        assert out.shape == (2, 3, 6)


class TestEmbedding:
    def test_lookup_matches_rows(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        idx = np.array([3, 1, 3])
        out = emb(idx)
        assert np.allclose(out.data, emb.weight.data[idx])

    def test_padding_row_is_zero(self, rng):
        emb = nn.Embedding(10, 4, rng=rng, padding_idx=0)
        assert np.allclose(emb.weight.data[0], 0.0)

    def test_gradient_accumulates_on_repeats(self, rng):
        emb = nn.Embedding(5, 3, rng=rng)
        out = emb(np.array([2, 2, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], 3.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_nd_indices(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        assert emb(np.zeros((2, 3, 5), dtype=int)).shape == (2, 3, 5, 4)


class TestLayerNorm:
    def test_normalizes(self, rng):
        ln = nn.LayerNorm(8)
        out = ln(Tensor(rng.normal(size=(4, 8)) * 10 + 3)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self, rng):
        ln = nn.LayerNorm(5)
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda x: ln(x), [x])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.allclose(drop(x).data, x.data)

    def test_train_mode_scales(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        # Inverted dropout: surviving entries are scaled by 1/keep.
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.05

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, rng=rng)

    def test_zero_p_identity_in_train(self, rng):
        drop = nn.Dropout(0.0, rng=rng)
        x = Tensor(rng.normal(size=(5, 5)))
        assert np.allclose(drop(x).data, x.data)


class TestModule:
    def test_parameter_discovery(self, rng):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Linear(3, 3, rng=rng)
                self.b = nn.Linear(3, 3, rng=rng)
                self.blocks = nn.ModuleList([nn.Linear(3, 3, rng=rng)])

        net = Net()
        params = list(net.parameters())
        assert len(params) == 6  # 3 weights + 3 biases

    def test_shared_parameter_counted_once(self, rng):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Linear(3, 3, rng=rng)
                self.b = self.a

        assert len(list(Net().parameters())) == 2

    def test_train_eval_propagates(self, rng):
        seq = nn.Sequential(nn.Dropout(0.5, rng=rng), nn.Dropout(0.2, rng=rng))
        seq.eval()
        assert all(not m.training for m in seq)
        seq.train()
        assert all(m.training for m in seq)

    def test_state_dict_roundtrip(self, rng):
        a = nn.Linear(3, 3, rng=rng)
        b = nn.Linear(3, 3, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_strictness(self, rng):
        a = nn.Linear(3, 3, rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_num_parameters(self, rng):
        assert nn.Linear(3, 4, rng=rng).num_parameters() == 3 * 4 + 4


class TestFeedForward:
    def test_shapes_and_grad(self, rng):
        ffn = nn.FeedForward(6, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 6)), requires_grad=True)
        out = ffn(x)
        assert out.shape == (2, 4, 6)
        out.sum().backward()
        assert x.grad is not None
