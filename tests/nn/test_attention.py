"""Unit tests for the vanilla attention blocks."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestScaledDotAttention:
    def test_uniform_when_scores_equal(self, rng):
        q = Tensor(np.zeros((1, 3, 4)))
        k = Tensor(np.zeros((1, 3, 4)))
        v = Tensor(rng.normal(size=(1, 3, 4)))
        out = nn.scaled_dot_attention(q, k, v)
        assert np.allclose(out.data[0, 0], v.data[0].mean(axis=0))

    def test_mask_excludes_positions(self, rng):
        q = Tensor(rng.normal(size=(1, 2, 4)))
        k = Tensor(rng.normal(size=(1, 3, 4)))
        v = Tensor(rng.normal(size=(1, 3, 4)))
        mask = np.array([[[True, True, False]] * 2])
        out = nn.scaled_dot_attention(q, k, v, mask=mask)
        # Perturbing the masked value must not change the output.
        v2 = v.data.copy()
        v2[0, 2] += 100.0
        out2 = nn.scaled_dot_attention(q, k, Tensor(v2), mask=mask)
        assert np.allclose(out.data, out2.data)


class TestMultiHeadSelfAttention:
    def test_shape(self, rng):
        mha = nn.MultiHeadSelfAttention(8, 2, rng=rng)
        out = mha(Tensor(rng.normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_dim_must_divide(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(7, 2, rng=rng)

    def test_padding_invariance(self, rng):
        mha = nn.MultiHeadSelfAttention(8, 2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[1, 1, 0, 0]])
        out1 = mha(Tensor(x), mask=mask)
        x2 = x.copy()
        x2[0, 2:] = 42.0  # change padded content
        out2 = mha(Tensor(x2), mask=mask)
        assert np.allclose(out1.data[0, :2], out2.data[0, :2])

    def test_backward_flows(self, rng):
        mha = nn.MultiHeadSelfAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        mha(x).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0


class TestTransformerBlock:
    def test_forward_backward(self, rng):
        block = nn.TransformerBlock(8, 2, dropout=0.0, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]])
        out = block(x, mask=mask)
        assert out.shape == (2, 4, 8)
        out.sum().backward()
        assert x.grad is not None

    def test_residual_path(self, rng):
        block = nn.TransformerBlock(8, 2, dropout=0.0, rng=rng)
        # Zero all weights: the block must reduce to the identity.
        for p in block.parameters():
            p.data = np.zeros_like(p.data)
        block.norm1.gamma.data = np.ones(8)
        block.norm2.gamma.data = np.ones(8)
        x = Tensor(rng.normal(size=(1, 3, 8)))
        assert np.allclose(block(x).data, x.data)
