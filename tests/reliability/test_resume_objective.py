"""Resume semantics of the objective seam: refusal on mismatch, component
round-trips, and bit-identical EMBSR-SSL crash recovery."""

import numpy as np
import pytest

from repro import reliability as rel
from repro.eval import TrainConfig, Trainer
from repro.registry import REGISTRY
from repro.reliability import load_training_state

TRAIN = dict(epochs=2, lr=0.01, seed=1, objective="ssl", cl_weight=0.1)


def new_model(dataset, seed=0):
    spec = REGISTRY.spec_for(
        "EMBSR-SSL",
        num_items=dataset.num_items,
        num_ops=dataset.num_operations,
        dim=12,
        seed=seed,
        dtype="float64",
    )
    model = REGISTRY.build_module(spec)
    return model


def batches_per_epoch(dataset, batch_size=64):
    return (len(dataset.train) + batch_size - 1) // batch_size


def assert_same_params(a, b):
    assert a.keys() == b.keys()
    for name in a:
        assert np.array_equal(a[name], b[name]), f"parameter {name} differs"


class TestObjectiveMismatchRefusal:
    def _crashed_state(self, dataset, tmp_path, **overrides):
        state_path = tmp_path / "train_state.npz"
        cfg = TrainConfig(
            **{**TRAIN, **overrides}, checkpoint_path=str(state_path), checkpoint_every=1
        )
        trainer = Trainer(new_model(dataset), cfg)
        rel.arm("trainer.after_batch", rel.crashing(), skip=2)
        with pytest.raises(rel.SimulatedCrash):
            trainer.fit(dataset)
        rel.disarm("trainer.after_batch")
        return state_path

    def test_resume_refuses_a_different_objective(self, dataset, tmp_path):
        state_path = self._crashed_state(dataset, tmp_path)
        other = Trainer(
            new_model(dataset), TrainConfig(epochs=2, lr=0.01, seed=1, objective="ce")
        )
        with pytest.raises(ValueError, match="objective.*saved='ssl'.*current='ce'"):
            other.resume(dataset, state_path)

    def test_resume_refuses_a_different_cl_weight(self, dataset, tmp_path):
        state_path = self._crashed_state(dataset, tmp_path)
        other = Trainer(
            new_model(dataset), TrainConfig(**{**TRAIN, "cl_weight": 0.5})
        )
        with pytest.raises(ValueError, match="cl_weight"):
            other.resume(dataset, state_path)

    def test_pre_objective_checkpoints_default_to_ce(self, dataset, tmp_path):
        """Archives written before the objective seam carry no objective
        fields; they must resume as plain cross-entropy, not error."""
        state_path = tmp_path / "train_state.npz"
        cfg = TrainConfig(
            epochs=2, lr=0.01, seed=1, checkpoint_path=str(state_path), checkpoint_every=1
        )
        trainer = Trainer(new_model(dataset), cfg)
        rel.arm("trainer.after_batch", rel.crashing(), skip=2)
        with pytest.raises(rel.SimulatedCrash):
            trainer.fit(dataset)
        rel.disarm("trainer.after_batch")

        # Simulate an old archive by dropping the objective keys.
        state = load_training_state(state_path)
        state.config.pop("objective", None)
        state.config.pop("cl_weight", None)
        from repro.reliability import save_training_state

        save_training_state(state_path, state)
        resumed = Trainer(new_model(dataset), cfg)
        resumed.resume(dataset, state_path)  # must not raise


class TestComponentRoundTrip:
    def test_components_survive_the_state_archive(self, dataset, tmp_path):
        state_path = tmp_path / "train_state.npz"
        cfg = TrainConfig(
            **TRAIN, checkpoint_path=str(state_path), checkpoint_every=1
        )
        trainer = Trainer(new_model(dataset), cfg)
        rel.arm("trainer.after_batch", rel.crashing(), skip=2)
        with pytest.raises(rel.SimulatedCrash):
            trainer.fit(dataset)
        rel.disarm("trainer.after_batch")

        state = load_training_state(state_path)
        # One component dict per batch of the in-flight epoch, parallel to
        # the loss list and the batch cursor.
        assert len(state.epoch_components) == state.batch_index
        assert len(state.epoch_components) == len(state.epoch_losses)
        for comp in state.epoch_components:
            assert set(comp) == {"ce", "infonce"}
            assert all(isinstance(v, float) for v in comp.values())

    def test_history_components_round_trip(self, dataset):
        trainer = Trainer(new_model(dataset), TrainConfig(**TRAIN))
        trainer.fit(dataset)
        assert trainer.history
        for stats in trainer.history:
            assert set(stats.components) == {"ce", "infonce"}

    def test_ssl_crash_resume_is_bit_identical(self, dataset, tmp_path):
        """The full contract: kill mid-epoch under the composite objective,
        resume, and finish with the uninterrupted run's exact parameters.
        Exercises the (seed, epoch, batch) augmentation streams across the
        process boundary."""
        baseline = Trainer(new_model(dataset), TrainConfig(**TRAIN))
        baseline.fit(dataset)

        per_epoch = batches_per_epoch(dataset)
        assert per_epoch >= 2
        crash_after = max(1, per_epoch // 2)
        state_path = tmp_path / "train_state.npz"
        reliable = TrainConfig(**TRAIN, checkpoint_path=str(state_path), checkpoint_every=1)

        crashed = Trainer(new_model(dataset), reliable)
        rel.arm("trainer.after_batch", rel.crashing(), skip=crash_after)
        with pytest.raises(rel.SimulatedCrash):
            crashed.fit(dataset)
        rel.disarm("trainer.after_batch")

        resumed = Trainer(new_model(dataset), reliable)
        resumed.resume(dataset, state_path)
        assert_same_params(baseline.model.state_dict(), resumed.model.state_dict())
        assert [h.components for h in baseline.history] == [
            h.components for h in resumed.history
        ]
