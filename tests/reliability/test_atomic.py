"""Atomic writes: a crash mid-write leaves the old file intact, no litter."""

import numpy as np
import pytest

from repro import reliability as rel
from repro.nn import Linear, Module, load_checkpoint, save_checkpoint
from repro.reliability import atomic_save_npz, atomic_write


def tmp_litter(directory):
    return [p for p in directory.iterdir() if p.suffix == ".tmp"]


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.bin"
        result = atomic_write(target, lambda f: f.write(b"payload"))
        assert result == target
        assert target.read_bytes() == b"payload"
        assert tmp_litter(tmp_path) == []

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        atomic_write(target, lambda f: f.write(b"new"))
        assert target.read_bytes() == b"new"

    def test_writer_error_preserves_old_file(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")

        def exploding(handle):
            handle.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            atomic_write(target, exploding)
        assert target.read_bytes() == b"old"
        assert tmp_litter(tmp_path) == []

    def test_mid_write_crash_preserves_old_file(self, tmp_path):
        """The serialization.mid_write failpoint fires at the worst moment:
        after the payload is written but before the rename."""
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        rel.arm("serialization.mid_write", rel.crashing())
        with pytest.raises(rel.SimulatedCrash):
            atomic_write(target, lambda f: f.write(b"new"))
        assert target.read_bytes() == b"old"
        assert tmp_litter(tmp_path) == []


class TestAtomicSaveNpz:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "arrays.npz"
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.linspace(0.0, 1.0, 4)}
        atomic_save_npz(target, arrays)
        with np.load(target) as archive:
            assert np.array_equal(archive["a"], arrays["a"])
            assert np.array_equal(archive["b"], arrays["b"])

    def test_exact_destination_name(self, tmp_path):
        """No NumPy ``.npz``-appending surprises: the path is used verbatim."""
        target = tmp_path / "checkpoint"  # no suffix on purpose
        atomic_save_npz(target, {"a": np.zeros(2)})
        assert target.exists()
        assert not (tmp_path / "checkpoint.npz").exists()


class _Tiny(Module):
    def __init__(self, scale=1.0):
        super().__init__()
        self.fc = Linear(4, 3, rng=np.random.default_rng(0))
        self.fc.weight.data *= scale


class TestCheckpointAtomicity:
    """Regression: ``save_checkpoint`` must never destroy the previous file."""

    def test_crash_mid_save_keeps_previous_checkpoint(self, tmp_path):
        path = tmp_path / "model.npz"
        good = _Tiny(scale=1.0)
        save_checkpoint(good, path)

        rel.arm("serialization.mid_write", rel.crashing())
        with pytest.raises(rel.SimulatedCrash):
            save_checkpoint(_Tiny(scale=99.0), path)
        rel.disarm("serialization.mid_write")

        restored = _Tiny(scale=0.0)
        load_checkpoint(restored, path)
        for name, array in good.state_dict().items():
            assert np.array_equal(restored.state_dict()[name], array), name
        assert tmp_litter(tmp_path) == []

    def test_save_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "model.npz"
        model = _Tiny(scale=2.5)
        save_checkpoint(model, path)
        restored = _Tiny(scale=0.0)
        load_checkpoint(restored, path)
        for name, array in model.state_dict().items():
            assert np.array_equal(restored.state_dict()[name], array), name
