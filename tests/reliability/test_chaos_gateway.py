"""Chaos tests: the serving path under injected model failures.

These drive the full in-process request pipeline (cache -> admission ->
batcher -> resilient model call -> fallback) with the ``batcher.score``
failpoint armed, and assert the degradation contract: requests always get
an answer, the breaker's state is visible, and recovery is automatic.
"""

import json
import time
import urllib.request

import numpy as np
import pytest

from repro import reliability as rel
from repro.eval import Recommender
from repro.reliability import CircuitBreaker
from repro.serve import RecommenderService
from repro.serving import GatewayConfig, PopularityFallback, ServingGateway


class EchoLast(Recommender):
    """Deterministic: rank the last macro item first."""

    name = "echo"

    def __init__(self, num_items):
        self.num_items = num_items

    def fit(self, dataset):
        return self

    def score_batch(self, batch) -> np.ndarray:
        scores = np.zeros((batch.batch_size, self.num_items))
        lengths = batch.macro_lengths()
        for b in range(batch.batch_size):
            last = batch.items[b, lengths[b] - 1]
            scores[b, last - 1] = 2.0
            scores[b, last % self.num_items] = 1.0
        return scores


def make_gateway(dataset, **config_kwargs) -> ServingGateway:
    service = RecommenderService(
        EchoLast(dataset.num_items), dataset.vocab, num_ops=dataset.num_operations
    )
    config_kwargs.setdefault("max_wait_ms", 2.0)
    config_kwargs.setdefault("retry_backoff_ms", 1.0)
    return ServingGateway(
        service, GatewayConfig(**config_kwargs), fallback=PopularityFallback(dataset)
    )


def seed_sessions(gateway, dataset, count):
    """Create ``count`` sessions, each with one scoreable event."""
    ids = [f"chaos-{i}" for i in range(count)]
    for i, session_id in enumerate(ids):
        gateway.ingest(session_id, dataset.vocab.decode(1 + i % 20), 0)
    return ids


class TestRetriesRecover:
    def test_20pct_fault_rate_is_absorbed_by_retries(self, dataset):
        """Every 5th model call fails; retry-with-backoff hides all of it."""
        gateway = make_gateway(dataset, retry_attempts=3)
        gateway.batcher.start()
        try:
            sessions = seed_sessions(gateway, dataset, 20)
            rel.arm("batcher.score", rel.raising(RuntimeError("injected")), every=5)
            results = [gateway.recommend(s, k=5) for s in sessions]
        finally:
            gateway.batcher.stop()
        assert all(r["source"] == "model" for r in results)
        assert all(r["degraded"] is False for r in results)
        assert all(len(r["items"]) == 5 for r in results)
        assert gateway.registry.counter("scoring_retries_total").value > 0
        assert gateway.breaker.state == CircuitBreaker.CLOSED

    def test_stall_injection_is_cut_by_the_call_timeout(self, dataset):
        """A wedged model call trips the per-call timeout, not the deadline."""
        gateway = make_gateway(
            dataset, retry_attempts=1, score_timeout_ms=20.0, deadline_ms=1000.0
        )
        gateway.batcher.start()
        try:
            (session,) = seed_sessions(gateway, dataset, 1)
            rel.arm("batcher.score", rel.sleeping(0.3))
            result = gateway.recommend(session, k=5)
        finally:
            gateway.batcher.stop()
        assert result["source"] == "fallback"
        assert result["degraded"] is True
        assert gateway.registry.counter("scoring_timeouts_total").value >= 1


class TestBreakerOpensAndFallsBack:
    def test_hard_failure_opens_breaker_and_degrades(self, dataset):
        gateway = make_gateway(
            dataset,
            retry_attempts=1,
            breaker_threshold=2,
            breaker_reset_s=60.0,  # stays open for the whole test
        )
        gateway.batcher.start()
        try:
            sessions = seed_sessions(gateway, dataset, 6)
            rel.arm("batcher.score", rel.raising(RuntimeError("model down")))
            results = [gateway.recommend(s, k=5) for s in sessions]
        finally:
            gateway.batcher.stop()
        # Every request still answered, all from the popularity fallback.
        assert all(r["source"] == "fallback" and r["degraded"] for r in results)
        assert all(r["items"] for r in results)
        assert gateway.breaker.state == CircuitBreaker.OPEN
        assert gateway.health()["breaker"] == CircuitBreaker.OPEN
        # Once open, the model is not called again: exactly 2 score attempts.
        assert rel.stats("batcher.score")[0] == 2
        registry = gateway.registry
        assert registry.counter("breaker_open_total").value == 1
        assert registry.counter("requests_degraded_total").value == len(sessions)
        assert registry.gauge("breaker_state").value == 1

    def test_half_open_probe_closes_after_recovery(self, dataset):
        gateway = make_gateway(
            dataset,
            retry_attempts=1,
            breaker_threshold=1,
            breaker_reset_s=0.05,
            breaker_half_open_successes=1,
        )
        gateway.batcher.start()
        try:
            sessions = seed_sessions(gateway, dataset, 3)
            rel.arm("batcher.score", rel.raising(RuntimeError("blip")))
            degraded = gateway.recommend(sessions[0], k=5)
            assert degraded["source"] == "fallback"
            assert gateway.breaker.state == CircuitBreaker.OPEN

            rel.disarm("batcher.score")  # dependency healed
            time.sleep(0.1)  # past breaker_reset_s: next call is the probe
            probed = gateway.recommend(sessions[1], k=5)
        finally:
            gateway.batcher.stop()
        assert probed["source"] == "model"
        assert probed["degraded"] is False
        assert gateway.breaker.state == CircuitBreaker.CLOSED
        # closed->open, open->half_open, half_open->closed
        assert gateway.registry.counter("breaker_transitions_total").value == 3
        assert gateway.registry.gauge("breaker_state").value == 0


class TestMetricsVisibility:
    def test_metrics_text_exposes_the_breaker(self, dataset):
        gateway = make_gateway(dataset, retry_attempts=1, breaker_threshold=1)
        gateway.batcher.start()
        try:
            sessions = seed_sessions(gateway, dataset, 2)
            rel.arm("batcher.score", rel.raising(RuntimeError("down")))
            gateway.recommend(sessions[0], k=5)
        finally:
            gateway.batcher.stop()
        text = gateway.registry.render_text()
        for name in (
            "breaker_state",
            "breaker_transitions_total",
            "breaker_open_total",
            "scoring_retries_total",
            "scoring_timeouts_total",
            "scoring_failures_total",
            "requests_degraded_total",
        ):
            assert name in text, name
        assert "breaker_state 1" in text  # open


@pytest.mark.slow
class TestHTTPChaos:
    """End-to-end over sockets: 20% injected faults, zero unhandled 500s."""

    def test_no_500s_under_injected_faults(self, dataset):
        gateway = make_gateway(dataset, retry_attempts=3, breaker_threshold=8)
        with gateway:
            sessions = seed_sessions(gateway, dataset, 50)
            rel.arm("batcher.score", rel.raising(RuntimeError("injected")), every=5)
            statuses, bodies = [], []
            for session_id in sessions:
                url = f"{gateway.address}/recommend?session_id={session_id}&k=5"
                with urllib.request.urlopen(url, timeout=10) as response:
                    statuses.append(response.status)
                    bodies.append(json.loads(response.read()))
        assert all(status == 200 for status in statuses)
        assert all(body["items"] for body in bodies)
        assert all("degraded" in body for body in bodies)
        assert not any(500 <= status for status in statuses)
