"""Divergence watchdog: rollback, LR cooling, and bounded retries."""

import numpy as np
import pytest

from repro import reliability as rel
from repro.core import EMBSRConfig, build_sgnn_self
from repro.eval import TrainConfig, Trainer
from repro.reliability import DivergenceError, DivergenceWatchdog


class ToyModel:
    def __init__(self):
        self.params = {"w": np.ones(3)}
        self.zero_grad_calls = 0

    def state_dict(self):
        return {k: v.copy() for k, v in self.params.items()}

    def load_state_dict(self, state):
        self.params = {k: v.copy() for k, v in state.items()}

    def zero_grad(self):
        self.zero_grad_calls += 1


class ToyOptimizer:
    def __init__(self, lr=0.1):
        self.lr = lr

    def state_dict(self):
        return {"lr": self.lr}

    def load_state_dict(self, state):
        self.lr = state["lr"]


def make(**kwargs):
    model, optimizer = ToyModel(), ToyOptimizer(lr=0.1)
    return model, optimizer, DivergenceWatchdog(model, optimizer, **kwargs)


class TestHealthCheck:
    def test_finite_is_healthy(self):
        _, _, dog = make()
        assert dog.healthy(1.5, 3.0)

    @pytest.mark.parametrize("loss,norm", [(np.nan, 1.0), (np.inf, 1.0), (1.0, np.nan), (1.0, -np.inf)])
    def test_non_finite_is_unhealthy(self, loss, norm):
        _, _, dog = make()
        assert not dog.healthy(loss, norm)

    def test_grad_limit_ceiling(self):
        _, _, dog = make(grad_limit=100.0)
        assert dog.healthy(1.0, 100.0)
        assert not dog.healthy(1.0, 101.0)

    def test_no_grad_limit_by_default(self):
        _, _, dog = make()
        assert dog.healthy(1.0, 1e30)


class TestRecovery:
    def test_rollback_restores_snapshot(self):
        model, optimizer, dog = make()
        model.params["w"] += 42.0  # the divergent update
        dog.recover(where="epoch 0, batch 1", loss=float("nan"), grad_norm=1.0)
        assert np.array_equal(model.params["w"], np.ones(3))
        assert model.zero_grad_calls == 1

    def test_lr_halved_on_recovery(self):
        _, optimizer, dog = make()
        dog.recover(where="x", loss=float("nan"), grad_norm=1.0)
        assert optimizer.lr == pytest.approx(0.05)

    def test_consecutive_recoveries_compound_the_cooldown(self):
        """Restoring the snapshot resets lr, so the backoff must compound:
        0.1 -> 0.05 -> 0.025 across retries of one incident."""
        _, optimizer, dog = make()
        dog.recover(where="x", loss=float("nan"), grad_norm=1.0)
        assert optimizer.lr == pytest.approx(0.05)
        dog.recover(where="x", loss=float("nan"), grad_norm=1.0)
        assert optimizer.lr == pytest.approx(0.025)

    def test_good_step_resets_retry_budget(self):
        model, optimizer, dog = make(max_retries=1)
        dog.recover(where="x", loss=float("nan"), grad_norm=1.0)
        dog.record_good()  # budget back to full, snapshot refreshed
        model.params["w"] *= 7.0
        dog.record_good()
        dog.recover(where="y", loss=float("nan"), grad_norm=1.0)
        assert np.array_equal(model.params["w"], np.full(3, 7.0))

    def test_exhausted_retries_raise_descriptive_error(self):
        _, _, dog = make(max_retries=2)
        dog.recover(where="x", loss=float("nan"), grad_norm=1.0)
        dog.recover(where="x", loss=float("nan"), grad_norm=1.0)
        with pytest.raises(DivergenceError) as excinfo:
            dog.recover(where="epoch 3, batch 11", loss=float("nan"), grad_norm=2.5)
        message = str(excinfo.value)
        assert "epoch 3, batch 11" in message
        assert "nan" in message and "2.5" in message
        assert "checkpoint" in message  # tells the operator what to do

    def test_on_lr_change_hook(self):
        factors = []
        _, _, dog = make(on_lr_change=factors.append)
        dog.recover(where="x", loss=float("nan"), grad_norm=1.0)
        assert factors == [0.5]

    def test_snapshot_every(self):
        model, _, dog = make(snapshot_every=2)
        model.params["w"] *= 3.0
        dog.record_good()  # 1 good step: snapshot NOT refreshed yet
        model.params["w"] *= 5.0
        dog.recover(where="x", loss=float("nan"), grad_norm=1.0)
        assert np.array_equal(model.params["w"], np.ones(3))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make(max_retries=-1)
        with pytest.raises(ValueError):
            make(lr_backoff=1.0)
        with pytest.raises(ValueError):
            make(snapshot_every=0)


def poison_loss(loss):
    """Failpoint action: corrupt the in-flight loss tensor to NaN."""
    loss.data = np.full_like(loss.data, np.nan)


class TestTrainerIntegration:
    """The watchdog wired into ``Trainer`` via the ``trainer.loss`` failpoint."""

    def model(self, dataset):
        cfg = EMBSRConfig(
            num_items=dataset.num_items, num_ops=dataset.num_operations, dim=12, seed=0
        )
        return build_sgnn_self(cfg)

    def test_single_nan_batch_recovers(self, dataset):
        trainer = Trainer(self.model(dataset), TrainConfig(epochs=1, lr=0.01, seed=1))
        rel.arm("trainer.loss", poison_loss, times=1)
        trainer.fit(dataset)
        assert rel.stats("trainer.loss")[1] == 1  # the poison fired
        assert len(trainer.history) == 1
        for name, array in trainer.model.state_dict().items():
            assert np.isfinite(array).all(), name

    def test_persistent_divergence_aborts_with_context(self, dataset):
        cfg = TrainConfig(epochs=1, lr=0.01, seed=1, watchdog_retries=2)
        trainer = Trainer(self.model(dataset), cfg)
        rel.arm("trainer.loss", poison_loss)  # every batch, forever
        with pytest.raises(DivergenceError, match="epoch 0, batch 0"):
            trainer.fit(dataset)

    def test_watchdog_can_be_disabled(self, dataset):
        """Same persistent poison that aborts above trains through silently
        with the watchdog off — NaN losses and all."""
        cfg = TrainConfig(epochs=1, lr=0.01, seed=1, watchdog=False)
        trainer = Trainer(self.model(dataset), cfg)
        rel.arm("trainer.loss", poison_loss)
        trainer.fit(dataset)  # no DivergenceError: nobody is watching
        assert np.isnan(trainer.history[0].train_loss)
