"""Retry policy, per-call timeout, circuit breaker, and their composition."""

import time

import pytest

from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    ReliabilityError,
    ResilientCaller,
    RetriesExhaustedError,
    RetryPolicy,
    ScoringTimeoutError,
    call_with_timeout,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(**kwargs):
    clock = FakeClock()
    transitions = []
    breaker = CircuitBreaker(
        clock=clock, on_transition=lambda old, new: transitions.append((old, new)), **kwargs
    )
    return breaker, clock, transitions


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base_s=0.01, backoff_max_s=0.05)
        assert policy.backoff_s(1) == pytest.approx(0.01)
        assert policy.backoff_s(2) == pytest.approx(0.02)
        assert policy.backoff_s(3) == pytest.approx(0.04)
        assert policy.backoff_s(4) == pytest.approx(0.05)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.05)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCallWithTimeout:
    def test_fast_call_returns(self):
        assert call_with_timeout(lambda: 42, timeout_s=1.0) == 42

    def test_none_budget_runs_inline(self):
        assert call_with_timeout(lambda: 42, timeout_s=None) == 42

    def test_slow_call_raises(self):
        with pytest.raises(ScoringTimeoutError):
            call_with_timeout(lambda: time.sleep(0.5), timeout_s=0.02)

    def test_timeout_error_is_both_reliability_and_timeout(self):
        error = ScoringTimeoutError("x")
        assert isinstance(error, ReliabilityError)
        assert isinstance(error, TimeoutError)

    def test_callee_error_propagates(self):
        def explode():
            raise KeyError("inner")

        with pytest.raises(KeyError, match="inner"):
            call_with_timeout(explode, timeout_s=1.0)


class TestCircuitBreakerStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _, _ = make_breaker(failure_threshold=3)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_at_consecutive_failure_threshold(self):
        breaker, _, transitions = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert transitions == [(CircuitBreaker.CLOSED, CircuitBreaker.OPEN)]

    def test_success_resets_the_consecutive_count(self):
        breaker, _, _ = make_breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_opens_after_reset_timeout(self):
        breaker, clock, transitions = make_breaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert transitions[-1] == (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN)

    def test_half_open_admits_one_probe_at_a_time(self):
        breaker, clock, _ = make_breaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        assert not breaker.allow()  # probe already in flight
        breaker.record_success()
        assert breaker.allow()  # probe resolved: next probe may go

    def test_probe_successes_close(self):
        breaker, clock, transitions = make_breaker(
            failure_threshold=1, reset_timeout_s=1.0, half_open_successes=2
        )
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.HALF_OPEN  # one success is not enough
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert transitions[-1] == (CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED)

    def test_probe_failure_reopens(self):
        breaker, clock, transitions = make_breaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()  # the reset clock restarted
        assert transitions[-1] == (CircuitBreaker.HALF_OPEN, CircuitBreaker.OPEN)

    def test_seconds_until_probe(self):
        breaker, clock, _ = make_breaker(failure_threshold=1, reset_timeout_s=10.0)
        assert breaker.seconds_until_probe() == 0.0
        breaker.record_failure()
        assert breaker.seconds_until_probe() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.seconds_until_probe() == pytest.approx(6.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_successes=0)


class TestResilientCaller:
    def flaky(self, failures):
        """A callable that fails ``failures`` times, then returns 'ok'."""
        state = {"left": failures, "calls": 0}

        def fn():
            state["calls"] += 1
            if state["left"] > 0:
                state["left"] -= 1
                raise RuntimeError("transient")
            return "ok"

        return fn, state

    def test_success_passes_through(self):
        caller = ResilientCaller(retry=RetryPolicy(max_attempts=3), sleep=lambda s: None)
        assert caller.call(lambda: "ok") == "ok"

    def test_transient_failures_are_retried(self):
        fn, state = self.flaky(failures=2)
        retries = []
        caller = ResilientCaller(
            retry=RetryPolicy(max_attempts=3),
            sleep=lambda s: None,
            on_retry=lambda: retries.append(1),
        )
        assert caller.call(fn) == "ok"
        assert state["calls"] == 3
        assert len(retries) == 2

    def test_backoff_schedule_is_honored(self):
        fn, _ = self.flaky(failures=2)
        sleeps = []
        caller = ResilientCaller(
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_max_s=1.0),
            sleep=sleeps.append,
        )
        caller.call(fn)
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhausted_retries_chain_the_cause(self):
        fn, state = self.flaky(failures=99)
        caller = ResilientCaller(retry=RetryPolicy(max_attempts=3), sleep=lambda s: None)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            caller.call(fn)
        assert state["calls"] == 3
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "3 attempt(s)" in str(excinfo.value)

    def test_open_breaker_fails_fast_without_calling(self):
        breaker, _, _ = make_breaker(failure_threshold=1)
        breaker.record_failure()
        calls = []
        caller = ResilientCaller(
            retry=RetryPolicy(max_attempts=3), breaker=breaker, sleep=lambda s: None
        )
        with pytest.raises(CircuitOpenError):
            caller.call(lambda: calls.append(1))
        assert calls == []

    def test_stops_retrying_when_breaker_opens_mid_call(self):
        breaker, _, _ = make_breaker(failure_threshold=2)
        fn, state = self.flaky(failures=99)
        caller = ResilientCaller(
            retry=RetryPolicy(max_attempts=10), breaker=breaker, sleep=lambda s: None
        )
        with pytest.raises(RetriesExhaustedError):
            caller.call(fn)
        assert state["calls"] == 2  # opened after the 2nd failure: stop hammering
        assert breaker.state == CircuitBreaker.OPEN

    def test_success_heals_the_breaker_count(self):
        breaker, _, _ = make_breaker(failure_threshold=2)
        caller = ResilientCaller(
            retry=RetryPolicy(max_attempts=1), breaker=breaker, sleep=lambda s: None
        )
        for _ in range(3):  # alternating failure/success never opens
            with pytest.raises(RetriesExhaustedError):
                caller.call(self.flaky(failures=99)[0])
            caller.call(lambda: "ok")
        assert breaker.state == CircuitBreaker.CLOSED

    def test_timeout_hook_fires(self):
        timeouts = []
        caller = ResilientCaller(
            retry=RetryPolicy(max_attempts=1, timeout_s=0.02),
            sleep=lambda s: None,
            on_timeout=lambda: timeouts.append(1),
        )
        with pytest.raises(RetriesExhaustedError) as excinfo:
            caller.call(lambda: time.sleep(0.5))
        assert isinstance(excinfo.value.__cause__, ScoringTimeoutError)
        assert timeouts == [1]


class TestTransitionTelemetry:
    """Satellites of the deployment control plane: every breaker edge is
    timestamped and counted so /metrics can expose flap history."""

    def test_last_transition_at_tracks_the_clock(self):
        breaker, clock, _ = make_breaker(failure_threshold=2, reset_timeout_s=10.0)
        assert breaker.last_transition_at == 0.0  # never transitioned
        clock.advance(5.0)
        breaker.record_failure()
        breaker.record_failure()  # -> OPEN at t=105
        assert breaker.last_transition_at == 105.0
        clock.advance(20.0)
        assert breaker.allow()  # -> HALF_OPEN at t=125
        assert breaker.last_transition_at == 125.0

    def test_transition_counts_accumulate_per_edge(self):
        breaker, clock, transitions = make_breaker(
            failure_threshold=1, reset_timeout_s=1.0, half_open_successes=1
        )
        for _ in range(2):  # two full open -> half-open -> closed cycles
            breaker.record_failure()
            clock.advance(2.0)
            breaker.allow()
            breaker.record_success()
        counts = breaker.transition_counts()
        assert counts[(CircuitBreaker.CLOSED, CircuitBreaker.OPEN)] == 2
        assert counts[(CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN)] == 2
        assert counts[(CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED)] == 2
        assert sum(counts.values()) == len(transitions)

    def test_counts_are_a_snapshot_copy(self):
        breaker, _, _ = make_breaker(failure_threshold=1)
        breaker.record_failure()
        snapshot = breaker.transition_counts()
        snapshot.clear()
        assert breaker.transition_counts() != {}
