"""Crash-safe training: kill the process mid-run, resume bit-identically."""

import numpy as np
import pytest

from repro import reliability as rel
from repro.core import EMBSRConfig, build_sgnn_self
from repro.eval import TrainConfig, Trainer
from repro.reliability import load_training_state

TRAIN = dict(epochs=3, lr=0.01, seed=1)


def new_model(dataset):
    cfg = EMBSRConfig(
        num_items=dataset.num_items, num_ops=dataset.num_operations, dim=12, seed=0
    )
    return build_sgnn_self(cfg)


def batches_per_epoch(dataset, batch_size=64):
    return (len(dataset.train) + batch_size - 1) // batch_size


def assert_same_params(a, b):
    assert a.keys() == b.keys()
    for name in a:
        assert np.array_equal(a[name], b[name]), f"parameter {name} differs"


class TestKillAndResume:
    def test_mid_epoch_kill_resume_is_bit_identical(self, dataset, tmp_path):
        """The acceptance criterion: kill -9 mid-epoch, resume, and end with
        exactly the parameters an uninterrupted run produces."""
        baseline = Trainer(new_model(dataset), TrainConfig(**TRAIN))
        baseline.fit(dataset)

        per_epoch = batches_per_epoch(dataset)
        assert per_epoch >= 2, "dataset too small to crash mid-epoch"
        # Crash in the middle of epoch 1, with a checkpoint after every batch.
        crash_after = per_epoch + max(1, per_epoch // 2)
        state_path = tmp_path / "train_state.npz"
        reliable = TrainConfig(**TRAIN, checkpoint_path=str(state_path), checkpoint_every=1)

        crashed = Trainer(new_model(dataset), reliable)
        rel.arm("trainer.after_batch", rel.crashing(), skip=crash_after)
        with pytest.raises(rel.SimulatedCrash):
            crashed.fit(dataset)
        rel.disarm("trainer.after_batch")
        assert state_path.exists()

        resumed = Trainer(new_model(dataset), reliable)
        resumed.resume(dataset, state_path)

        assert_same_params(baseline.model.state_dict(), resumed.model.state_dict())
        assert [(h.epoch, h.train_loss, h.valid_metric) for h in baseline.history] == [
            (h.epoch, h.train_loss, h.valid_metric) for h in resumed.history
        ]

    def test_epoch_boundary_kill_resume_is_bit_identical(self, dataset, tmp_path):
        baseline = Trainer(new_model(dataset), TrainConfig(**TRAIN))
        baseline.fit(dataset)

        state_path = tmp_path / "train_state.npz"
        reliable = TrainConfig(**TRAIN, checkpoint_path=str(state_path))
        crashed = Trainer(new_model(dataset), reliable)
        rel.arm("trainer.after_epoch", rel.crashing(), skip=1)  # die after epoch 1
        with pytest.raises(rel.SimulatedCrash):
            crashed.fit(dataset)
        rel.disarm("trainer.after_epoch")

        resumed = Trainer(new_model(dataset), reliable)
        resumed.resume(dataset, state_path)
        assert_same_params(baseline.model.state_dict(), resumed.model.state_dict())

    def test_resume_via_config_field(self, dataset, tmp_path):
        """``TrainConfig.resume_from`` makes ``fit`` itself resume — the
        path the CLI's ``--resume`` flag uses."""
        state_path = tmp_path / "train_state.npz"
        reliable = TrainConfig(**TRAIN, checkpoint_path=str(state_path), checkpoint_every=1)
        crashed = Trainer(new_model(dataset), reliable)
        rel.arm("trainer.after_batch", rel.crashing(), skip=2)
        with pytest.raises(rel.SimulatedCrash):
            crashed.fit(dataset)
        rel.disarm("trainer.after_batch")

        cfg = TrainConfig(
            **TRAIN, checkpoint_path=str(state_path), checkpoint_every=1,
            resume_from=str(state_path),
        )
        resumed = Trainer(new_model(dataset), cfg)
        resumed.fit(dataset)
        baseline = Trainer(new_model(dataset), TrainConfig(**TRAIN)).fit(dataset)
        assert_same_params(baseline.model.state_dict(), resumed.model.state_dict())


class TestStateFile:
    def test_checkpoint_written_at_epoch_ends(self, dataset, tmp_path):
        state_path = tmp_path / "train_state.npz"
        cfg = TrainConfig(epochs=2, lr=0.01, seed=1, checkpoint_path=str(state_path))
        Trainer(new_model(dataset), cfg).fit(dataset)
        state = load_training_state(state_path)
        assert state.epoch == 2 and state.batch_index == 0
        assert state.global_step == 2 * batches_per_epoch(dataset)
        assert len(state.history) == 2
        assert state.best_state is not None
        assert state.config["seed"] == 1

    def test_rng_streams_are_captured(self, dataset, tmp_path):
        """Dropout generators must ride along or replayed batches drift."""
        state_path = tmp_path / "train_state.npz"
        cfg = TrainConfig(epochs=1, lr=0.01, seed=1, checkpoint_path=str(state_path))
        Trainer(new_model(dataset), cfg).fit(dataset)
        state = load_training_state(state_path)
        assert state.rng_states, "expected at least one captured rng stream"
        for stream in state.rng_states.values():
            assert "state" in stream  # a BitGenerator state dict

    def test_corrupt_archive_is_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, junk=np.zeros(3))
        with pytest.raises(ValueError, match="training-state archive"):
            load_training_state(bogus)


class TestResumeValidation:
    def test_mismatched_critical_config_is_rejected(self, dataset, tmp_path):
        state_path = tmp_path / "train_state.npz"
        cfg = TrainConfig(epochs=1, lr=0.01, seed=1, checkpoint_path=str(state_path))
        Trainer(new_model(dataset), cfg).fit(dataset)

        drifted = TrainConfig(epochs=1, lr=0.5, seed=2, checkpoint_path=str(state_path))
        with pytest.raises(ValueError, match="config mismatch") as excinfo:
            Trainer(new_model(dataset), drifted).resume(dataset, state_path)
        assert "lr" in str(excinfo.value) and "seed" in str(excinfo.value)

    def test_extending_epochs_is_allowed(self, dataset, tmp_path):
        """epochs is deliberately non-critical: a finished run can continue."""
        state_path = tmp_path / "train_state.npz"
        short = TrainConfig(epochs=1, lr=0.01, seed=1, checkpoint_path=str(state_path))
        Trainer(new_model(dataset), short).fit(dataset)

        longer = TrainConfig(epochs=2, lr=0.01, seed=1, checkpoint_path=str(state_path))
        extended = Trainer(new_model(dataset), longer)
        extended.resume(dataset, state_path)
        assert len(extended.history) == 2
