"""Failpoint registry semantics: arming, selectors, payloads, stats."""

import time

import pytest

from repro import reliability as rel


class Boom(RuntimeError):
    pass


class TestDisarmed:
    def test_disarmed_site_is_a_noop(self):
        rel.failpoint("nothing.armed.here")  # must not raise

    def test_stats_of_disarmed_site(self):
        assert rel.stats("nothing.armed.here") == (0, 0)

    def test_is_armed(self):
        assert not rel.is_armed("site")
        rel.arm("site", rel.raising(Boom))
        assert rel.is_armed("site")


class TestArming:
    def test_armed_site_fires(self):
        rel.arm("site", rel.raising(Boom))
        with pytest.raises(Boom):
            rel.failpoint("site")

    def test_only_the_armed_name_fires(self):
        rel.arm("site.a", rel.raising(Boom))
        rel.failpoint("site.b")  # different name: untouched

    def test_disarm_is_idempotent(self):
        rel.arm("site", rel.raising(Boom))
        rel.disarm("site")
        rel.disarm("site")
        rel.failpoint("site")

    def test_disarm_all(self):
        rel.arm("a", rel.raising(Boom))
        rel.arm("b", rel.raising(Boom))
        rel.disarm_all()
        rel.failpoint("a")
        rel.failpoint("b")

    def test_rearming_replaces_selectors(self):
        rel.arm("site", rel.raising(Boom), times=1)
        with pytest.raises(Boom):
            rel.failpoint("site")
        rel.arm("site", rel.raising(Boom), times=1)  # fresh budget
        with pytest.raises(Boom):
            rel.failpoint("site")

    def test_payload_reaches_the_action(self):
        seen = []
        rel.arm("site", seen.append)
        rel.failpoint("site", {"batch": 3})
        assert seen == [{"batch": 3}]


class TestSelectors:
    def test_times_caps_fires(self):
        rel.arm("site", rel.raising(Boom), times=2)
        for _ in range(2):
            with pytest.raises(Boom):
                rel.failpoint("site")
        rel.failpoint("site")  # budget spent: no-op
        assert rel.stats("site") == (3, 2)

    def test_skip_passes_first_hits(self):
        rel.arm("site", rel.raising(Boom), skip=3)
        for _ in range(3):
            rel.failpoint("site")
        with pytest.raises(Boom):
            rel.failpoint("site")

    def test_every_is_a_deterministic_fault_rate(self):
        rel.arm("site", rel.raising(Boom), every=5)
        outcomes = []
        for _ in range(20):
            try:
                rel.failpoint("site")
                outcomes.append("ok")
            except Boom:
                outcomes.append("boom")
        assert outcomes.count("boom") == 4  # exactly 20% of hits
        assert outcomes[4] == "boom" and outcomes[9] == "boom"

    def test_skip_every_times_compose(self):
        rel.arm("site", rel.raising(Boom), skip=2, every=3, times=2)
        fired = []
        for hit in range(1, 13):
            try:
                rel.failpoint("site")
            except Boom:
                fired.append(hit)
        # eligible hits start at 3; every 3rd eligible = hits 5, 8; times=2 stops there
        assert fired == [5, 8]

    def test_invalid_selectors_rejected(self):
        with pytest.raises(ValueError):
            rel.arm("site", rel.raising(Boom), every=0)
        with pytest.raises(ValueError):
            rel.arm("site", rel.raising(Boom), skip=-1)
        with pytest.raises(ValueError):
            rel.arm("site", rel.raising(Boom), times=0)


class TestContextManager:
    def test_armed_scope(self):
        with rel.armed("site", rel.raising(Boom)):
            with pytest.raises(Boom):
                rel.failpoint("site")
        rel.failpoint("site")  # disarmed on exit

    def test_armed_disarms_on_error(self):
        with pytest.raises(Boom):
            with rel.armed("site", rel.raising(Boom)):
                rel.failpoint("site")
        assert not rel.is_armed("site")


class TestActions:
    def test_raising_accepts_instance(self):
        error = Boom("specific")
        rel.arm("site", rel.raising(error))
        with pytest.raises(Boom, match="specific"):
            rel.failpoint("site")

    def test_sleeping_stalls(self):
        rel.arm("site", rel.sleeping(0.05))
        started = time.perf_counter()
        rel.failpoint("site")
        assert time.perf_counter() - started >= 0.045

    def test_crashing_is_uncatchable_by_except_exception(self):
        rel.arm("site", rel.crashing())
        with pytest.raises(rel.SimulatedCrash):
            try:
                rel.failpoint("site")
            except Exception:  # the point: ordinary recovery can't swallow it
                pytest.fail("SimulatedCrash must not be an Exception")

    def test_mutating_action(self):
        payload = {"loss": 1.0}
        rel.arm("site", lambda p: p.__setitem__("loss", float("nan")))
        rel.failpoint("site", payload)
        assert payload["loss"] != payload["loss"]  # NaN
