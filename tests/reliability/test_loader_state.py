"""DataLoader shuffle order as a pure function of ``(seed, epoch)``."""

import numpy as np
import pytest

from repro.data.dataset import DataLoader


def targets_of_pass(loader):
    """Concatenated target classes of one full pass — fingerprints the order."""
    return np.concatenate([batch.target_classes for batch in loader])


class TestPermutation:
    def test_epoch0_matches_legacy_single_shuffle(self, dataset):
        """Backward compat: epoch 0 must reproduce the old loader's first
        pass — one ``default_rng(seed)`` shuffle of ``arange(n)``."""
        loader = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=0)
        expected = np.arange(len(dataset.train))
        np.random.default_rng(0).shuffle(expected)
        assert np.array_equal(loader.permutation(0), expected)

    def test_later_epochs_match_legacy_mutating_stream(self, dataset):
        """Epoch k must reproduce what the old persistent-generator loader
        emitted on its (k+1)-th pass."""
        n = len(dataset.train)
        rng = np.random.default_rng(3)  # the old loader's persistent stream
        loader = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=3)
        for epoch in range(4):
            legacy = np.arange(n)
            rng.shuffle(legacy)
            assert np.array_equal(loader.permutation(epoch), legacy), epoch

    def test_pure_function_of_seed_and_epoch(self, dataset):
        loader = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=5)
        assert np.array_equal(loader.permutation(2), loader.permutation(2))
        assert not np.array_equal(loader.permutation(1), loader.permutation(2))

    def test_no_shuffle_is_identity(self, dataset):
        loader = DataLoader(dataset.train, batch_size=32, shuffle=False, seed=5)
        identity = np.arange(len(dataset.train))
        assert np.array_equal(loader.permutation(0), identity)
        assert np.array_equal(loader.permutation(7), identity)


class TestEpochReplay:
    def test_set_epoch_replays_an_interrupted_pass(self, dataset):
        first = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=1)
        pass0 = targets_of_pass(first)  # auto-advances to epoch 1
        pass1 = targets_of_pass(first)
        assert not np.array_equal(pass0, pass1)

        replay = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=1)
        replay.set_epoch(1)
        assert np.array_equal(targets_of_pass(replay), pass1)

    def test_iter_auto_advances_epoch(self, dataset):
        loader = DataLoader(dataset.train, batch_size=64, shuffle=True, seed=1)
        assert loader.epoch == 0
        for _ in loader:
            pass
        assert loader.epoch == 1

    def test_set_epoch_rejects_negative(self, dataset):
        loader = DataLoader(dataset.train, batch_size=32, shuffle=True)
        with pytest.raises(ValueError):
            loader.set_epoch(-1)


class TestStateDict:
    def test_roundtrip(self, dataset):
        loader = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=9)
        loader.set_epoch(4)
        state = loader.state_dict()
        assert state == {"seed": 9, "epoch": 4}

        restored = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=0)
        restored.load_state_dict(state)
        original = DataLoader(dataset.train, batch_size=32, shuffle=True, seed=9)
        original.set_epoch(4)
        assert np.array_equal(targets_of_pass(restored), targets_of_pass(original))
