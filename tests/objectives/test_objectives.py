"""Unit behavior of the composable training objectives (docs/objectives.md)."""

import numpy as np
import pytest

from repro.autograd import default_dtype
from repro.nn import cross_entropy
from repro.objectives import (
    CompositeObjective,
    CrossEntropyObjective,
    InfoNCEObjective,
    OperationPredictionObjective,
    StepContext,
    build_objective,
)
from repro.registry import REGISTRY


def new_model(dataset, name="EMBSR", dim=12, seed=0):
    spec = REGISTRY.spec_for(
        name,
        num_items=dataset.num_items,
        num_ops=dataset.num_operations,
        dim=dim,
        dropout=0.0,
        seed=seed,
        dtype="float64",
    )
    model = REGISTRY.build_module(spec)
    model.train()
    return model


class TestCrossEntropyObjective:
    def test_matches_raw_cross_entropy(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset)
            parts = CrossEntropyObjective().compute(model, batch)
            expected = cross_entropy(model(batch), batch.target_classes)
        assert float(parts.loss.item()) == pytest.approx(float(expected.item()))
        assert set(parts.components) == {"ce"}
        assert parts.component_values()["ce"] == float(parts.loss.item())

    def test_total_divisor_scales_the_loss(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset)
            whole = CrossEntropyObjective().compute(model, batch)
            halved = CrossEntropyObjective().compute(model, batch, total=2 * batch.batch_size)
        assert float(halved.loss.item()) == pytest.approx(float(whole.loss.item()) / 2)


class TestCompositeObjective:
    def test_weighted_sum_with_unweighted_components(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset)
            a, b = CrossEntropyObjective(), CrossEntropyObjective()
            composite = CompositeObjective([("one", a, 1.0), ("two", b, 0.25)])
            parts = composite.compute(model, batch)
            single = float(a.compute(model, batch).loss.item())
        assert composite.name == "one+two"
        assert composite.component_names == ("one", "two")
        assert float(parts.loss.item()) == pytest.approx(1.25 * single)
        # Components are the raw per-term losses, not the weighted ones.
        assert parts.component_values()["two"] == pytest.approx(single)

    def test_duplicate_or_empty_terms_rejected(self):
        ce = CrossEntropyObjective()
        with pytest.raises(ValueError):
            CompositeObjective([])
        with pytest.raises(ValueError):
            CompositeObjective([("x", ce, 1.0), ("x", ce, 0.5)])

    def test_begin_step_forwards_to_children(self):
        child = CrossEntropyObjective()
        composite = CompositeObjective([("ce", child, 1.0)])
        ctx = StepContext(seed=9, epoch=2, batch_index=3)
        composite.begin_step(ctx)
        assert child._ctx == ctx


class TestInfoNCEObjective:
    def test_same_context_is_deterministic(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset)
            obj = InfoNCEObjective(num_ops=dataset.num_operations)
            ctx = StepContext(seed=5, epoch=0, batch_index=0)
            obj.begin_step(ctx)
            first = float(obj.compute(model, batch).loss.item())
            obj.begin_step(ctx)
            second = float(obj.compute(model, batch).loss.item())
        assert first == second

    def test_different_context_changes_the_views(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset)
            obj = InfoNCEObjective(num_ops=dataset.num_operations)
            obj.begin_step(StepContext(seed=5, epoch=0, batch_index=0))
            first = float(obj.compute(model, batch).loss.item())
            obj.begin_step(StepContext(seed=5, epoch=0, batch_index=1))
            second = float(obj.compute(model, batch).loss.item())
        assert first != second

    def test_requires_encode_sessions(self, dataset, batch):
        class NoEncoder:
            pass

        obj = InfoNCEObjective(num_ops=dataset.num_operations)
        obj.begin_step(StepContext())
        with pytest.raises(TypeError, match="encode_sessions"):
            obj.compute(NoEncoder(), batch)

    def test_loss_is_finite_and_backpropagates(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset)
            obj = InfoNCEObjective(num_ops=dataset.num_operations)
            obj.begin_step(StepContext(seed=5))
            parts = obj.compute(model, batch)
            assert np.isfinite(float(parts.loss.item()))
            parts.loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).sum() > 0 for g in grads)


class TestOperationPredictionObjective:
    def test_mkm_sr_op_loss_is_finite(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset, name="MKM-SR")
            obj = OperationPredictionObjective()
            obj.begin_step(StepContext())
            parts = obj.compute(model, batch)
        assert np.isfinite(float(parts.loss.item()))
        assert set(parts.components) == {"op"}

    def test_requires_operation_logits(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset)  # EMBSR has no operation head
            obj = OperationPredictionObjective()
            with pytest.raises(TypeError, match="operation_logits"):
                obj.compute(model, batch)


class TestBuildObjective:
    def test_names(self):
        assert build_objective("ce").name == "ce"
        assert build_objective("infonce", num_ops=5).name == "infonce"
        assert build_objective("ssl", num_ops=5).name == "ce+infonce"
        assert build_objective("op-aux").name == "ce+op"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="ssl"):
            build_objective("nope")

    def test_ssl_weight_reaches_the_composite(self, dataset, batch):
        with default_dtype("float64"):
            model = new_model(dataset)
            ctx = StepContext(seed=5, epoch=0, batch_index=0)
            light, heavy = build_objective("ssl", cl_weight=0.0, num_ops=dataset.num_operations), \
                build_objective("ssl", cl_weight=1.0, num_ops=dataset.num_operations)
            light.begin_step(ctx)
            heavy.begin_step(ctx)
            lp = light.compute(model, batch)
            hp = heavy.compute(model, batch)
        # Same views (same ctx), so the difference is exactly the InfoNCE term.
        assert float(hp.loss.item()) - float(lp.loss.item()) == pytest.approx(
            hp.component_values()["infonce"], rel=1e-9
        )
