"""Behavior preservation and cross-path bit-identity of the objective seam.

Two contracts:

* **Golden parity.** Training under the default cross-entropy objective is
  the *same computation* it was before objectives existed. The hashes below
  were produced by the pre-refactor trainer (sha256 over the sorted state
  dict plus the per-epoch (epoch, train_loss, valid_metric) history) and
  must never drift — on the eager, compiled, and 2-worker paths alike.
  Note the compiled golden trains with ``bucket_lengths=True``: bucketing
  changes padding and is math-bearing, so it is part of the golden's key.
* **InfoNCE parity.** The contrastive objective is tape- and shard-
  compatible: eager, trace/replay, and N-worker training are bitwise equal.
"""

import hashlib

import numpy as np
import pytest

from repro.eval import ExperimentConfig, ExperimentRunner

GOLDEN = {
    ("EMBSR", "eager"): "49d46995ea828530bf2505912c0c47b226a0201364884849598bd29ecdbf2ff2",
    ("EMBSR", "compiled"): "fb3a9bd51c80a5ba62a588dadde8d6a37f390c4b3a761082d2e329f0d3791fba",
    ("EMBSR", "workers2"): "f78643864d5e2398fd6a64eec03805d006be8d849ab523ccabcfffc5f4795b63",
    ("NARM", "eager"): "de8b22390d27433b11808a36de9a70bfe7a5f0e99fb1bbb44c0978c7eddc6527",
    ("NARM", "compiled"): "cdc65f1312ef9a7000b347f923fdcd50fa36dcc8783db1262b0aabc8fd11ffa7",
    ("NARM", "workers2"): "032a8feada6038f98d28caef848faeeb7d545d23e49d7d8a02af81df91300bed",
}
MODES = {
    "eager": {},
    "compiled": {"compile": True, "bucket_lengths": True},
    "workers2": {"workers": 2, "grad_shards": 2},
}


def fit(dataset, name, **kw):
    config = ExperimentConfig(
        dim=12, epochs=2, batch_size=32, seed=5, dtype="float64", patience=2, **kw
    )
    runner = ExperimentRunner(dataset, config)
    recommender = runner.build(name)
    recommender.fit(dataset)
    return recommender


def digest(recommender) -> str:
    h = hashlib.sha256()
    state = recommender.model.state_dict()
    for name in sorted(state):
        h.update(name.encode())
        h.update(np.ascontiguousarray(state[name]).tobytes())
    for e in recommender.trainer.history:
        h.update(repr((e.epoch, float(e.train_loss), float(e.valid_metric))).encode())
    return h.hexdigest()


def state_of(recommender) -> dict:
    return {k: v.copy() for k, v in recommender.model.state_dict().items()}


def assert_same_params(a: dict, b: dict) -> None:
    assert a.keys() == b.keys()
    for name in sorted(a):
        assert np.array_equal(a[name], b[name]), f"parameter {name} differs"


class TestGoldenCrossEntropy:
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_embsr_matches_pre_refactor_golden(self, dataset, mode):
        assert digest(fit(dataset, "EMBSR", **MODES[mode])) == GOLDEN[("EMBSR", mode)]

    @pytest.mark.slow
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_narm_matches_pre_refactor_golden(self, dataset, mode):
        assert digest(fit(dataset, "NARM", **MODES[mode])) == GOLDEN[("NARM", mode)]


class TestInfoNCEParity:
    def test_ssl_compiled_is_bitwise_eager(self, dataset):
        eager = fit(dataset, "EMBSR-SSL")
        compiled = fit(dataset, "EMBSR-SSL", compile=True)
        assert_same_params(state_of(eager), state_of(compiled))

    def test_ssl_compiled_bucketed_is_bitwise_eager_bucketed(self, dataset):
        eager = fit(dataset, "EMBSR-SSL", bucket_lengths=True)
        compiled = fit(dataset, "EMBSR-SSL", compile=True, bucket_lengths=True)
        assert_same_params(state_of(eager), state_of(compiled))

    def test_ssl_two_workers_is_bitwise_serial(self, dataset):
        serial = fit(dataset, "EMBSR-SSL", grad_shards=2)
        workers = fit(dataset, "EMBSR-SSL", workers=2, grad_shards=2)
        assert_same_params(state_of(serial), state_of(workers))

    def test_ssl_actually_replays_under_compile(self, dataset):
        """Trace/replay must engage for the composite objective, not fall
        back to eager (the scalar-loss tape-replay regression guard)."""
        from repro.compile.step import CompileEngine
        from repro.data.dataset import DataLoader
        from repro.objectives import StepContext, build_objective
        from repro.registry import REGISTRY

        spec = REGISTRY.spec_for(
            "EMBSR-SSL",
            num_items=dataset.num_items,
            num_ops=dataset.num_operations,
            dim=12,
            seed=5,
            dtype="float64",
        )
        model = REGISTRY.build_module(spec)
        model.train()
        objective = build_objective("ssl", cl_weight=0.1, num_ops=dataset.num_operations)
        engine = CompileEngine(model, objective=objective)
        loader = DataLoader(
            dataset.train, batch_size=32, shuffle=True, seed=5, bucket_lengths=True
        )
        for epoch in range(3):
            loader.set_epoch(epoch)
            for i, batch in enumerate(loader):
                for p in model.parameters():
                    p.zero_grad()
                engine.step(batch, ctx=StepContext(seed=5, epoch=epoch, batch_index=i))
        assert engine.stats.replays > 0
        assert engine.stats.eager_steps == 0
        assert not engine.stats.fallbacks
        assert set(engine.last_components) == {"ce", "infonce"}
