"""Shared fixtures for the composable-objectives suite."""

import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset


@pytest.fixture(scope="package")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=7), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture(scope="package")
def batch(dataset):
    from repro.data.dataset import DataLoader

    return next(iter(DataLoader(dataset.train, batch_size=32, shuffle=True, seed=5)))
