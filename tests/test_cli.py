"""End-to-end tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def pipeline_files(tmp_path_factory):
    """Run generate -> prepare once; later tests reuse the artifacts."""
    root = tmp_path_factory.mktemp("cli")
    sessions = root / "sessions.jsonl"
    dataset = root / "dataset.json"
    assert main([
        "generate", "--config", "jd-appliances", "--sessions", "250",
        "--seed", "5", "--out", str(sessions),
    ]) == 0
    assert main([
        "prepare", "--config", "jd-appliances", "--input", str(sessions),
        "--out", str(dataset), "--min-support", "2",
    ]) == 0
    return root, sessions, dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--config", "trivago", "--out", "x.jsonl"]
        )
        assert args.config == "trivago"
        assert args.sessions == 2000

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--model", "STAMP", "--port", "0", "--max-batch-size", "16"]
        )
        assert args.config == "jd-appliances"
        assert args.port == 0
        assert args.max_batch_size == 16
        assert args.deadline_ms == 250.0

    def test_parallel_args(self):
        base = ["train", "--dataset", "d.json", "--model", "EMBSR"]
        args = build_parser().parse_args(base + ["--workers", "4", "--grad-shards", "8"])
        assert args.workers == 4
        assert args.grad_shards == 8
        # Defaults: single process, auto grid.
        args = build_parser().parse_args(base)
        assert args.workers == 1
        assert args.grad_shards == 0
        args = build_parser().parse_args(
            ["compare", "--dataset", "d.json", "--models", "EMBSR", "NARM",
             "--cell-workers", "3"]
        )
        assert args.cell_workers == 3

    def test_profile_trace_arg(self):
        args = build_parser().parse_args(
            ["profile", "--dataset", "d.json", "--model", "EMBSR",
             "--trace", "t.json"]
        )
        assert args.trace == "t.json"


class TestPipeline:
    def test_artifacts_created(self, pipeline_files):
        _root, sessions, dataset = pipeline_files
        assert sessions.exists() and sessions.stat().st_size > 0
        assert dataset.exists() and dataset.stat().st_size > 0

    def test_train_with_checkpoint(self, pipeline_files, capsys):
        root, _sessions, dataset = pipeline_files
        ckpt = root / "model.npz"
        code = main([
            "train", "--dataset", str(dataset), "--model", "STAMP",
            "--dim", "8", "--epochs", "1", "--checkpoint", str(ckpt),
        ])
        assert code == 0
        assert ckpt.exists()
        out = capsys.readouterr().out
        assert "test metrics" in out

    def test_evaluate_checkpoint(self, pipeline_files, capsys):
        root, _sessions, dataset = pipeline_files
        ckpt = root / "model2.npz"
        main([
            "train", "--dataset", str(dataset), "--model", "STAMP",
            "--dim", "8", "--epochs", "1", "--checkpoint", str(ckpt),
        ])
        code = main([
            "evaluate", "--dataset", str(dataset), "--model", "STAMP",
            "--dim", "8", "--checkpoint", str(ckpt),
        ])
        assert code == 0
        assert "H@20" in capsys.readouterr().out

    def test_train_nonneural_checkpoint_fails_cleanly(self, pipeline_files, capsys):
        root, _sessions, dataset = pipeline_files
        code = main([
            "train", "--dataset", str(dataset), "--model", "S-POP",
            "--checkpoint", str(root / "nope.npz"),
        ])
        assert code == 1

    @pytest.mark.slow
    def test_serve_smoke(self, capsys):
        """Train-and-serve end to end: boots, prints the address, exits."""
        code = main([
            "serve", "--config", "jd-appliances", "--sessions", "150",
            "--model", "STAMP", "--dim", "8", "--epochs", "1",
            "--port", "0", "--duration", "0.3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving STAMP on http://127.0.0.1:" in out
        assert "/metrics" in out

    def test_compare(self, pipeline_files, capsys):
        _root, _sessions, dataset = pipeline_files
        code = main([
            "compare", "--dataset", str(dataset), "--models", "S-POP", "STAMP",
            "--dim", "8", "--epochs", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S-POP" in out and "STAMP" in out

    def test_compare_artifact_dir(self, pipeline_files, capsys):
        root, _sessions, dataset = pipeline_files
        out_dir = root / "bundles"
        code = main([
            "compare", "--dataset", str(dataset), "--models", "S-POP", "STAMP",
            "--dim", "8", "--epochs", "1", "--artifact-dir", str(out_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert (out_dir / "STAMP.npz").exists()
        assert "S-POP: non-parametric" in out


class TestModels:
    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        from repro.registry import model_names

        for name in model_names():
            assert name in out, f"`repro models` omits registered model {name!r}"
        assert "EMBSR-beta=" in out  # the pattern footer

    def test_models_golden_names(self, capsys):
        """Golden sync: the listing and MODEL_NAMES cover the same Table III."""
        from repro.eval import MODEL_NAMES

        main(["models"])
        out = capsys.readouterr().out
        for name in MODEL_NAMES:
            assert name in out


class TestArtifactFlow:
    def test_train_evaluate_serve_artifact(self, pipeline_files, capsys):
        root, _sessions, dataset = pipeline_files
        artifact = root / "stamp_artifact.npz"
        code = main([
            "train", "--dataset", str(dataset), "--model", "STAMP",
            "--dim", "8", "--epochs", "1", "--artifact", str(artifact),
        ])
        assert code == 0
        assert artifact.exists()
        assert "artifact saved" in capsys.readouterr().out

        code = main(["evaluate", "--dataset", str(dataset), "--artifact", str(artifact)])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded STAMP" in out and "H@20" in out

    def test_serve_artifact_missing_file(self, capsys):
        code = main(["serve", "--artifact", "/nonexistent/model.npz", "--port", "0"])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    @pytest.mark.slow
    def test_serve_from_artifact_smoke(self, pipeline_files, capsys):
        """`repro serve --artifact` boots with no dataset work at all."""
        root, _sessions, dataset = pipeline_files
        artifact = root / "serve_artifact.npz"
        main([
            "train", "--dataset", str(dataset), "--model", "STAMP",
            "--dim", "8", "--epochs", "1", "--artifact", str(artifact),
        ])
        capsys.readouterr()
        code = main([
            "serve", "--artifact", str(artifact), "--port", "0", "--duration", "0.3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving STAMP on http://127.0.0.1:" in out
