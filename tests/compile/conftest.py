"""Shared fixtures for the compiled-step / quantized-inference suite."""

import pytest

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset


@pytest.fixture(scope="package")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 200, seed=11), cfg.operations, min_support=2, name="jd"
    )
