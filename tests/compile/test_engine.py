"""CompileEngine lifecycle: trace -> validate -> replay, re-trace, fallback.

Exercises the engine directly (no Trainer) so the per-shape-key state
machine is observable through ``engine.stats``.
"""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.compile.step import CompileEngine
from repro.core import EMBSRConfig, build_sgnn_self
from repro.data.dataset import DataLoader


def new_model(dataset, seed=0):
    cfg = EMBSRConfig(
        num_items=dataset.num_items, num_ops=dataset.num_operations, dim=12, seed=seed
    )
    return build_sgnn_self(cfg)


def bucketed_batches(dataset, batch_size=32):
    return list(DataLoader(dataset.train, batch_size=batch_size, bucket_lengths=True))


def run_pass(engine, batches):
    losses = []
    for batch in batches:
        # Mirror the Trainer's optimizer.zero_grad() before every step —
        # the engine's grad parity contract assumes fresh accumulators.
        engine._zero_grads()
        losses.append(engine.step(batch))
    return losses


class TestLifecycle:
    def test_third_pass_is_all_replays(self, dataset):
        engine = CompileEngine(new_model(dataset))
        batches = bucketed_batches(dataset)
        run_pass(engine, batches)
        run_pass(engine, batches)
        traces_before = engine.stats.traces
        replays_before = engine.stats.replays
        run_pass(engine, batches)
        # Every shape key has been traced and validated by now: the third
        # pass must hit the replay path only, with no fresh traces.
        assert engine.stats.traces == traces_before
        assert engine.stats.replays == replays_before + len(batches)
        assert not engine.stats.fallbacks

    def test_validation_runs_once_per_key(self, dataset):
        engine = CompileEngine(new_model(dataset))
        batches = bucketed_batches(dataset)
        for _ in range(3):
            run_pass(engine, batches)
        assert engine.stats.validations == engine.stats.traces
        assert engine.stats.eager_steps == 0

    def test_unseen_shape_retraces_without_fallback(self, dataset):
        engine = CompileEngine(new_model(dataset))
        batches = bucketed_batches(dataset, batch_size=32)
        for _ in range(2):
            run_pass(engine, batches)
        traces_before = engine.stats.traces
        # A bucket miss (different batch size => different padded dims) is
        # a new key: it must trace, not fall back to permanent eager mode.
        odd = bucketed_batches(dataset, batch_size=19)[0]
        engine.step(odd)
        assert engine.stats.traces == traces_before + 1
        assert not engine.stats.fallbacks

    def test_losses_match_eager_engine(self, dataset):
        """Every step's loss equals the eager loss on an identical twin."""
        model_a = new_model(dataset, seed=3)
        model_b = new_model(dataset, seed=3)
        for name, value in model_a.state_dict().items():
            assert np.array_equal(value, model_b.state_dict()[name]), name
        engine = CompileEngine(model_a)
        twin = CompileEngine(model_b)
        batches = bucketed_batches(dataset)
        for _ in range(3):
            compiled_losses = []
            eager_losses = []
            for batch in batches:
                engine._zero_grads()
                twin._zero_grads()
                compiled_losses.append(engine.step(batch))
                eager_losses.append(twin._eager(batch, None))
            assert compiled_losses == eager_losses


class TestInteraction:
    def test_no_grad_inference_between_steps(self, dataset):
        """Interleaved eval-mode scoring must not disturb the taped replay."""
        model_a = new_model(dataset, seed=1)
        model_b = new_model(dataset, seed=1)
        engine_a = CompileEngine(model_a)
        engine_b = CompileEngine(model_b)
        batches = bucketed_batches(dataset)
        losses_a, losses_b = [], []
        for _ in range(3):
            for batch in batches:
                engine_a._zero_grads()
                engine_b._zero_grads()
                losses_a.append(engine_a.step(batch))
                # Arm B scores under no_grad between every training step —
                # the tape (which holds a retain_graph backward) must not
                # observe any of it.
                model_b.eval()
                with no_grad():
                    model_b(batch)
                model_b.train()
                losses_b.append(engine_b.step(batch))
        assert losses_a == losses_b
        assert not engine_b.stats.fallbacks
        assert engine_b.stats.traces == engine_a.stats.traces

    def test_repeated_step_same_batch_is_deterministic(self, dataset):
        """retain_graph replay: same params + same batch => same loss.

        Dropout is disabled so the only state between calls is the tape —
        with it on, each step legitimately consumes fresh RNG draws.
        """
        cfg = EMBSRConfig(
            num_items=dataset.num_items,
            num_ops=dataset.num_operations,
            dim=12,
            dropout=0.0,
            seed=2,
        )
        model = build_sgnn_self(cfg)
        engine = CompileEngine(model)
        batch = bucketed_batches(dataset)[0]
        losses = []
        for _ in range(4):
            engine._zero_grads()
            losses.append(engine.step(batch))
        # trace, validate, then replays — all four must agree exactly.
        assert len(set(losses)) == 1
        assert engine.stats.replays >= 2

    def test_training_flag_is_part_of_the_key(self, dataset):
        model = new_model(dataset, seed=4)
        engine = CompileEngine(model)
        batch = bucketed_batches(dataset)[0]
        engine._zero_grads()
        train_loss = engine.step(batch)
        assert engine.stats.traces == 1
        model.eval()
        engine._zero_grads()
        eval_loss = engine.step(batch)
        model.train()
        # eval-mode step (dropout off) is a different program: new key.
        assert engine.stats.traces == 2
        assert eval_loss != train_loss
