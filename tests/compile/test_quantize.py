"""QuantizedScorer fidelity and the serving --compute plumbing.

The reduced-precision contract (docs/performance.md, "Quantized
inference"): float32 is the exact reference; float16/int8 are storage
formats whose scoring ends in an exact float32 re-rank, so recall@20
against the float32 ranking must be >= 0.999; the fused ``top_k`` must
agree with select-after-score; and serving must stamp the compute mode
into its cache scope and requantize on hot-swap.
"""

import numpy as np
import pytest

from repro.compile.quantize import COMPUTE_MODES, QuantizedScorer
from repro.data.dataset import DataLoader
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.eval.topk import top_k_indices
from repro.retrieval.factorize import factorize
from repro.serve import RecommenderService

QUANT = ("float32", "float16", "int8")


@pytest.fixture(scope="module")
def recommender(dataset):
    config = ExperimentConfig(dim=16, epochs=1, seed=0, patience=1)
    return ExperimentRunner(dataset, config).run("EMBSR").recommender


@pytest.fixture(scope="module")
def factorization(recommender):
    return factorize(recommender.model)


@pytest.fixture(scope="module")
def test_batches(dataset):
    return list(DataLoader(dataset.test, batch_size=64))


def _recall_at_20(approx, exact):
    exact_top = top_k_indices(exact, 20)
    approx_top = top_k_indices(approx, 20)
    hits = sum(
        len(set(exact_top[row]) & set(approx_top[row])) for row in range(exact.shape[0])
    )
    return hits / (exact.shape[0] * 20)


class TestScorer:
    def test_invalid_mode_rejected(self, factorization):
        with pytest.raises(ValueError):
            QuantizedScorer(factorization, compute="bfloat16")

    def test_storage_footprint(self, factorization):
        f32 = QuantizedScorer(factorization, compute="float32")
        f16 = QuantizedScorer(factorization, compute="float16")
        i8 = QuantizedScorer(factorization, compute="int8")
        assert f16.storage_nbytes() == f32.storage_nbytes() // 2
        # int8 stores one byte per weight plus a float32 scale per row.
        assert i8.storage_nbytes() == f32.storage_nbytes() // 4 + 4 * i8.num_items

    def test_float32_is_exact(self, factorization, test_batches):
        scorer = QuantizedScorer(factorization, compute="float32")
        table32 = np.asarray(factorization.item_matrix(), dtype=np.float32)
        for batch in test_batches:
            q = np.asarray(factorization.query_matrix(batch), dtype=np.float32)
            assert np.array_equal(scorer.score_batch(batch), q @ table32.T)

    @pytest.mark.parametrize("mode", ["float16", "int8"])
    def test_quantized_recall_at_20(self, factorization, test_batches, mode):
        exact = np.concatenate(
            [
                QuantizedScorer(factorization, compute="float32").score_batch(b)
                for b in test_batches
            ]
        )
        scorer = QuantizedScorer(factorization, compute=mode)
        approx = np.concatenate([scorer.score_batch(b) for b in test_batches])
        assert _recall_at_20(approx, exact) >= 0.999

    @pytest.mark.parametrize("mode", QUANT)
    def test_fused_top_k_matches_select_after_score(self, factorization, test_batches, mode):
        scorer = QuantizedScorer(factorization, compute=mode)
        for batch in test_batches:
            q = factorization.query_matrix(batch)
            scores = scorer.scores(q)
            idx, vals = scorer.top_k(q, 20)
            assert np.array_equal(idx, top_k_indices(scores, 20))
            assert np.array_equal(vals, np.take_along_axis(scores, idx, axis=1))

    def test_rerank_top_clamped_to_catalogue(self, factorization, test_batches):
        scorer = QuantizedScorer(factorization, compute="int8", rerank_top=10**9)
        assert scorer.rerank_top == scorer.num_items
        # With every item re-ranked, the scores are the exact float32 ones.
        exact = QuantizedScorer(factorization, compute="float32")
        batch = test_batches[0]
        assert np.array_equal(scorer.score_batch(batch), exact.score_batch(batch))


class TestServing:
    @pytest.fixture
    def service(self, recommender, dataset):
        return RecommenderService(
            recommender, dataset.vocab, num_ops=dataset.num_operations
        )

    def _fill(self, service, dataset, n=6):
        for i, sid in enumerate(f"s{i}" for i in range(n)):
            session = dataset.test[i % len(dataset.test)]
            for item, ops in zip(session.macro_items, session.op_sequences):
                service.record(sid, dataset.vocab.decode(item), ops[0])
        return [f"s{i}" for i in range(n)]

    def test_scope_stamps_compute_mode(self, service):
        assert service.retrieval_scope() is None
        service.enable_compute("float16")
        assert service.retrieval_scope() == ("compute", "float16", None)
        service.enable_compute("native")
        assert service.retrieval_scope() is None

    def test_all_modes_accepted(self, service):
        for mode in COMPUTE_MODES:
            assert service.enable_compute(mode) == mode
        assert service.compute == COMPUTE_MODES[-1]

    def test_unknown_mode_rejected(self, service):
        with pytest.raises(ValueError):
            service.enable_compute("float8")

    def test_conflicts_with_ann_retrieval(self, service):
        service.retrieval = object()  # stand-in for an active ANN pipeline
        with pytest.raises(ValueError):
            service.enable_compute("int8")
        service.retrieval = None

    def test_quantized_top_k_matches_reference(self, service, dataset):
        sids = self._fill(service, dataset)
        reference = {sid: service.top_k(sid, k=10) for sid in sids}
        for mode in QUANT:
            service.enable_compute(mode)
            for sid in sids:
                assert service.top_k(sid, k=10) == reference[sid], (mode, sid)

    def test_adopt_recommender_requantizes(self, service, recommender):
        service.enable_compute("int8", rerank_top=64)
        snapshot = service._quantized
        service.adopt_recommender(recommender)
        assert service.compute == "int8"
        assert service._quantized is not snapshot
        assert service._quantized.rerank_top == 64

    def test_adopt_unfactorizable_degrades_to_native(self, service, dataset):
        service.enable_compute("float16")

        class Opaque:
            name = "opaque"

            def score_batch(self, batch):
                return np.zeros((len(batch.targets), dataset.num_items - 1))

        service.adopt_recommender(Opaque())
        assert service.compute == "native"
        assert service._quantized is None
