"""Packed collation must be invisible to the compile cache.

The trace/replay engine keys tapes on padded batch shapes. Because the
vectorized packed collate is bitwise the loop collate, a packed loader must
emit exactly the shape keys an object loader emits — no extra tapes, no
retraces — and an engine warmed on object batches must replay (not trace)
when handed packed batches.
"""

import numpy as np
import pytest

from repro.compile.step import CompileEngine
from repro.core import EMBSRConfig, build_sgnn_self
from repro.data.dataset import DataLoader
from repro.data.packed import pack_dataset


def new_model(dataset, seed=0):
    cfg = EMBSRConfig(
        num_items=dataset.num_items, num_ops=dataset.num_operations, dim=12, seed=seed
    )
    return build_sgnn_self(cfg)


def loaders(dataset, packed, **kwargs):
    source = pack_dataset(dataset).train if packed else dataset.train
    return DataLoader(source, batch_size=32, bucket_lengths=True, **kwargs)


@pytest.mark.parametrize("prefetch", [False, True])
def test_packed_loader_emits_identical_shape_keys(dataset, prefetch):
    engine = CompileEngine(new_model(dataset))
    object_keys = [engine._base_key(b, None) for b in loaders(dataset, packed=False)]
    packed_keys = [
        engine._base_key(b, None)
        for b in loaders(dataset, packed=True, prefetch=prefetch)
    ]
    assert packed_keys == object_keys


def test_engine_warmed_on_object_batches_replays_packed_batches(dataset):
    engine = CompileEngine(new_model(dataset))
    object_batches = list(loaders(dataset, packed=False))
    for _ in range(2):  # trace, then validate, every key
        for batch in object_batches:
            engine._zero_grads()
            engine.step(batch)
    traces_before = engine.stats.traces
    replays_before = engine.stats.replays
    packed_loader = loaders(dataset, packed=True)
    n = 0
    for batch in packed_loader:
        engine._zero_grads()
        engine.step(batch)
        n += 1
    assert engine.stats.traces == traces_before  # zero new tapes
    assert engine.stats.replays == replays_before + n
    assert not engine.stats.fallbacks


def test_compiled_losses_identical_object_vs_packed(dataset):
    """Step losses through twin engines agree bit-for-bit batch by batch."""
    model_a = new_model(dataset, seed=5)
    model_b = new_model(dataset, seed=5)
    engine_a = CompileEngine(model_a)
    engine_b = CompileEngine(model_b)
    losses_a, losses_b = [], []
    for batch in loaders(dataset, packed=False):
        engine_a._zero_grads()
        losses_a.append(engine_a.step(batch))
    for batch in loaders(dataset, packed=True):
        engine_b._zero_grads()
        losses_b.append(engine_b.step(batch))
    assert losses_a == losses_b
    # Gradients of the final step must agree too — the backward pass also
    # ran on bitwise-identical inputs.
    for p_a, p_b in zip(model_a.parameters(), model_b.parameters()):
        assert (p_a.grad is None) == (p_b.grad is None)
        if p_a.grad is not None:
            assert np.array_equal(p_a.grad, p_b.grad)
