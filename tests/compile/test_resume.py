"""Checkpoint portability across the compile flag.

``compile`` is execution-only (bitwise-safe) and deliberately absent from
``_RESUME_CRITICAL_FIELDS``: a run checkpointed eager may resume compiled
and vice versa, landing on the same parameters as the uninterrupted eager
run. ``bucket_lengths`` *is* resume-critical (padding is math-bearing), so
every arm here trains with it enabled.
"""

import numpy as np
import pytest

from repro import reliability as rel
from repro.core import EMBSRConfig, build_sgnn_self
from repro.eval import TrainConfig, Trainer

TRAIN = dict(epochs=3, lr=0.01, seed=1, bucket_lengths=True)


@pytest.fixture(autouse=True)
def clean_failpoints():
    rel.disarm_all()
    yield
    rel.disarm_all()


def new_model(dataset):
    cfg = EMBSRConfig(
        num_items=dataset.num_items, num_ops=dataset.num_operations, dim=12, seed=0
    )
    return build_sgnn_self(cfg)


def assert_same_params(a, b):
    assert a.keys() == b.keys()
    for name in a:
        assert np.array_equal(a[name], b[name]), f"parameter {name} differs"


def crashed_checkpoint(dataset, path, *, compile):
    """Crash mid-epoch-1 under the given compile flag, leave a state file."""
    per_epoch = (len(dataset.train) + 63) // 64
    cfg = TrainConfig(
        **TRAIN, checkpoint_path=str(path), checkpoint_every=1, compile=compile
    )
    trainer = Trainer(new_model(dataset), cfg)
    rel.arm("trainer.after_batch", rel.crashing(), skip=per_epoch + max(1, per_epoch // 2))
    with pytest.raises(rel.SimulatedCrash):
        trainer.fit(dataset)
    rel.disarm("trainer.after_batch")
    assert path.exists()


@pytest.fixture(scope="module")
def baseline(dataset):
    """The uninterrupted all-eager run every resumed arm must reproduce."""
    trainer = Trainer(new_model(dataset), TrainConfig(**TRAIN))
    trainer.fit(dataset)
    return trainer.model.state_dict()


@pytest.mark.parametrize(
    "crash_compiled,resume_compiled",
    [(False, True), (True, False), (True, True)],
    ids=["eager_to_compiled", "compiled_to_eager", "compiled_to_compiled"],
)
def test_resume_across_compile_flag(dataset, tmp_path, baseline, crash_compiled, resume_compiled):
    state_path = tmp_path / "state.npz"
    crashed_checkpoint(dataset, state_path, compile=crash_compiled)

    cfg = TrainConfig(**TRAIN, resume_from=str(state_path), compile=resume_compiled)
    trainer = Trainer(new_model(dataset), cfg)
    trainer.fit(dataset)
    assert_same_params(trainer.model.state_dict(), baseline)
