"""Compiled training must reproduce eager training, not approximate it.

The contract (docs/performance.md, "Compiled step"): with ``compile=True``
the trace/validate/replay engine produces the *same* training run as the
eager path — bitwise at float64, and within 1e-6 on per-epoch losses at
float32 (where BLAS accumulation order inside the identical kernels is the
only permitted wiggle; in practice the replays are bitwise there too).
Both arms train with ``bucket_lengths=True`` so the padding — which is
math-bearing — is held fixed and only the execution strategy varies.
"""

import numpy as np
import pytest

from repro.eval import ExperimentConfig, ExperimentRunner

MODELS = ["EMBSR", "NARM", "SR-GNN"]


def _fit(dataset, model_name, dtype, *, compile, batch_size=32):
    config = ExperimentConfig(
        dim=12,
        epochs=2,
        batch_size=batch_size,
        seed=5,
        dtype=dtype,
        patience=2,
        compile=compile,
        bucket_lengths=True,
    )
    recommender = ExperimentRunner(dataset, config).build(model_name)
    recommender.fit(dataset)
    state = {k: v.copy() for k, v in recommender.model.state_dict().items()}
    history = [(h.epoch, h.train_loss, h.valid_metric) for h in recommender.trainer.history]
    return state, history


@pytest.mark.parametrize("model_name", MODELS)
def test_float64_bitwise(dataset, model_name):
    eager_state, eager_history = _fit(dataset, model_name, "float64", compile=False)
    comp_state, comp_history = _fit(dataset, model_name, "float64", compile=True)
    assert comp_history == eager_history
    assert set(comp_state) == set(eager_state)
    for name in sorted(eager_state):
        assert np.array_equal(comp_state[name], eager_state[name]), (
            f"{model_name}: parameter {name!r} diverged under compile, "
            f"max|Δ|={np.max(np.abs(comp_state[name] - eager_state[name])):.3e}"
        )


@pytest.mark.parametrize("model_name", MODELS)
def test_float32_losses_within_1e6(dataset, model_name):
    _, eager_history = _fit(dataset, model_name, "float32", compile=False)
    comp_state, comp_history = _fit(dataset, model_name, "float32", compile=True)
    assert len(comp_history) == len(eager_history)
    for (_, eager_loss, _), (_, comp_loss, _) in zip(eager_history, comp_history):
        assert abs(comp_loss - eager_loss) <= 1e-6


@pytest.mark.parametrize("batch_size", [16, 48])
def test_embsr_parity_across_batch_sizes(dataset, batch_size):
    """Odd batch sizes exercise ragged tails and multiple shape buckets."""
    eager_state, eager_history = _fit(
        dataset, "EMBSR", "float64", compile=False, batch_size=batch_size
    )
    comp_state, comp_history = _fit(
        dataset, "EMBSR", "float64", compile=True, batch_size=batch_size
    )
    assert comp_history == eager_history
    for name in sorted(eager_state):
        assert np.array_equal(comp_state[name], eager_state[name]), name
