"""Tests for the future-work extensions (op importance, op filtering)."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import no_grad
from repro.core import (
    EMBSRConfig,
    OperationImportance,
    WeightedOpEMBSR,
    build_embsr_weighted_ops,
    filter_operations,
)
from repro.data import MacroSession, collate


@pytest.fixture
def config():
    return EMBSRConfig(num_items=25, num_ops=5, dim=8, seed=0)


class TestOperationImportance:
    def test_initial_weights_are_one(self):
        imp = OperationImportance(num_ops=4)
        assert np.allclose(imp.values(), 1.0)

    def test_weights_bounded(self):
        imp = OperationImportance(num_ops=4)
        imp.scores.data = np.array([-100.0, 0.0, 100.0, 1.0, -1.0])
        values = imp.values()
        assert (values >= 0).all() and (values <= 2).all()
        assert values[0] < 0.01 and values[2] > 1.99

    def test_forward_shape(self):
        imp = OperationImportance(num_ops=4)
        out = imp(np.array([[1, 2], [0, 3]]))
        assert out.shape == (2, 2, 1)

    def test_gradient_flows(self):
        imp = OperationImportance(num_ops=4)
        out = imp(np.array([1, 2, 2]))
        out.sum().backward()
        assert imp.scores.grad is not None
        assert imp.scores.grad[2] != 0


class TestWeightedOpEMBSR:
    def test_forward_backward(self, config):
        model = build_embsr_weighted_ops(config)
        assert isinstance(model, WeightedOpEMBSR)
        batch = collate([MacroSession([1, 2], [[1, 2], [3]], target=4)])
        logits = model(batch)
        assert logits.shape == (1, config.num_items)
        loss = nn.cross_entropy(logits, batch.target_classes)
        loss.backward()
        assert model.op_importance.scores.grad is not None

    def test_importance_changes_scores(self, config):
        model = build_embsr_weighted_ops(config)
        model.eval()
        batch = collate([MacroSession([1, 2], [[1, 2], [3]], target=4)])
        with no_grad():
            base = model(batch).data
        model.op_importance.scores.data = np.array([0.0, 5.0, -5.0, 0.0, 0.0, 0.0])
        with no_grad():
            changed = model(batch).data
        assert not np.allclose(base, changed)

    def test_neutral_importance_matches_base_behaviour(self, config):
        """At init (all weights = 1) the extension equals plain EMBSR."""
        from repro.core import build_embsr

        weighted = build_embsr_weighted_ops(config)
        plain = build_embsr(config)
        # The wrapper inserts ".base" into the op-embedding key paths and
        # adds the importance scores; map the names back for the plain model.
        state = {
            k: v
            for k, v in weighted.state_dict().items()
            if not k.startswith("op_importance") and ".base." not in k
            and ".importance." not in k
        }
        plain.load_state_dict(state)
        batch = collate([MacroSession([1, 2, 1], [[1], [2, 3], [4]], target=5)])
        weighted.eval()
        plain.eval()
        with no_grad():
            assert np.allclose(weighted(batch).data, plain(batch).data)


class TestFilterOperations:
    def test_drops_requested_ops(self):
        ex = MacroSession([1, 2], [[0, 3], [3]], target=5)
        out = filter_operations([ex], drop_ops={3})
        assert out[0].op_sequences[0] == [0]

    def test_empty_chain_keeps_placeholder(self):
        ex = MacroSession([1], [[3, 3]], target=5)
        out = filter_operations([ex], drop_ops={3})
        assert out[0].op_sequences == [[3]]  # placeholder: original first op

    def test_items_and_target_untouched(self):
        ex = MacroSession([1, 2, 3], [[0], [1], [2]], target=9)
        out = filter_operations([ex], drop_ops={1})
        assert out[0].macro_items == ex.macro_items
        assert out[0].target == ex.target

    def test_original_not_mutated(self):
        ex = MacroSession([1], [[0, 1]], target=5)
        filter_operations([ex], drop_ops={1})
        assert ex.op_sequences == [[0, 1]]
