"""Unit tests for the star multigraph GNN (Eqs. 5-11)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import StarMultigraphGNN
from repro.data import MacroSession, collate
from repro.graphs import BatchGraph


def build(items, ops=None, target=99):
    ops = ops or [[0]] * len(items)
    batch = collate([MacroSession(items, ops, target=target)])
    return batch, BatchGraph.from_batch(batch)


@pytest.fixture
def gnn():
    return StarMultigraphGNN(8, num_layers=1, rng=np.random.default_rng(0))


def run(gnn, graph, seed=1, htilde=None):
    rng = np.random.default_rng(seed)
    B, c = graph.node_items.shape
    n = graph.gather.shape[1]
    nodes0 = Tensor(rng.normal(size=(B, c, 8)), requires_grad=True)
    star0 = Tensor(rng.normal(size=(B, 8)))
    if htilde is None:
        htilde = Tensor(np.zeros((B, n, 8)))
    h_f, star = gnn(nodes0, star0, htilde, graph)
    return nodes0, h_f, star


class TestStarMultigraphGNN:
    def test_shapes(self, gnn):
        _, graph = build([1, 2, 3, 2])
        nodes0, h_f, star = run(gnn, graph)
        assert h_f.shape == nodes0.shape
        assert star.shape == (1, 8)

    def test_single_node_session_no_messages(self, gnn):
        _, graph = build([5])
        nodes0, h_f, star = run(gnn, graph)
        assert np.isfinite(h_f.data).all()
        assert np.isfinite(star.data).all()

    def test_padded_nodes_stay_zero(self, gnn):
        batch = collate(
            [
                MacroSession([1, 2, 3], [[0]] * 3, target=9),
                MacroSession([4], [[0]], target=9),
            ]
        )
        graph = BatchGraph.from_batch(batch)
        _, h_f, _ = run(gnn, graph)
        # Session 1 has one node; slots 1-2 are padding and must stay zero.
        assert np.allclose(h_f.data[1, 1:], 0.0)

    def test_micro_op_information_changes_output(self, gnn):
        _, graph = build([1, 2, 3])
        rng = np.random.default_rng(2)
        nodes0 = Tensor(rng.normal(size=(1, 3, 8)))
        star0 = Tensor(rng.normal(size=(1, 8)))
        h_zero = Tensor(np.zeros((1, 3, 8)))
        h_rand = Tensor(rng.normal(size=(1, 3, 8)))
        out_zero, _ = gnn(nodes0, star0, h_zero, graph)
        out_rand, _ = gnn(nodes0, star0, h_rand, graph)
        assert not np.allclose(out_zero.data, out_rand.data)

    def test_parallel_edges_deliver_distinct_messages(self, gnn):
        """The multigraph property: the same node pair, different op context."""
        _, graph = build([1, 2, 3, 2, 3])  # 2->3 twice (orders 1 and 3)
        rng = np.random.default_rng(3)
        nodes0 = Tensor(rng.normal(size=(1, 3, 8)))
        star0 = Tensor(rng.normal(size=(1, 8)))
        # htilde differs at macro positions 1 vs 3 (both item 2).
        h = rng.normal(size=(1, 5, 8))
        out_a, _ = gnn(nodes0, star0, Tensor(h), graph)
        h2 = h.copy()
        h2[0, 3] += 1.0  # change only the second visit's op encoding
        out_b, _ = gnn(nodes0, star0, Tensor(h2), graph)
        assert not np.allclose(out_a.data, out_b.data)

    def test_gradients_flow_to_inputs(self, gnn):
        _, graph = build([1, 2, 3, 2])
        nodes0, h_f, star = run(gnn, graph)
        (h_f.sum() + star.sum()).backward()
        assert nodes0.grad is not None
        assert np.abs(nodes0.grad).sum() > 0

    def test_multiple_layers_run(self):
        gnn = StarMultigraphGNN(8, num_layers=3, rng=np.random.default_rng(0))
        _, graph = build([1, 2, 1, 3])
        _, h_f, star = run(gnn, graph)
        assert np.isfinite(h_f.data).all()

    def test_highway_mixes_initial_embeddings(self, gnn):
        """Eq. 11: output depends on nodes0 beyond the propagation path."""
        _, graph = build([1, 2])
        rng = np.random.default_rng(4)
        nodes0 = Tensor(rng.normal(size=(1, 2, 8)))
        star0 = Tensor(rng.normal(size=(1, 8)))
        htilde = Tensor(np.zeros((1, 2, 8)))
        h_f, _ = gnn(nodes0, star0, htilde, graph)
        # The highway gate keeps h_f between nodes0 and the GNN output, so
        # h_f cannot equal the propagated state alone unless g == 0.
        g = gnn.w_g(  # reconstruct the gate to confirm it is non-trivial
            __import__("repro.autograd", fromlist=["concat"]).concat(
                [nodes0, h_f], axis=2
            )
        ).sigmoid()
        assert 0.0 < g.data.mean() < 1.0
