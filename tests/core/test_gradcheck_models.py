"""Numerical gradient verification through complete model stacks.

These are the most demanding correctness tests in the suite: central
finite differences through the *entire* EMBSR forward pass (multigraph GNN
+ micro-op GRU + operation-aware attention + fusion + normalized scoring)
must match the autograd engine's analytic gradients. Tiny dimensions keep
them fast.
"""

import numpy as np
import pytest

from repro import nn
from repro.autograd import numerical_gradient
from repro.core import EMBSRConfig, build_embsr
from repro.data import MacroSession, collate


@pytest.fixture(scope="module")
def setup():
    config = EMBSRConfig(num_items=9, num_ops=4, dim=4, dropout=0.0, seed=0)
    model = build_embsr(config)
    model.eval()  # disable dropout so finite differences are deterministic
    batch = collate(
        [
            MacroSession([1, 2, 3, 2], [[1], [2, 3], [1], [3]], target=4),
            MacroSession([5, 6], [[2], [1, 1]], target=7),
        ]
    )
    return model, batch


def loss_fn(model, batch):
    logits = model(batch)
    return nn.cross_entropy(logits, batch.target_classes)


PARAMS_TO_CHECK = [
    "item_embedding.weight",
    "op_embedding.weight",
    "gru_op_embedding.weight",
    "gnn.msg_in.weight",
    "gnn.w_z.weight",
    "gnn.w_q1.weight",
    "gnn.w_g.weight",
    "op_encoder.gru.cell.w_ih",
    "attention.w_q.weight",
    "attention.relations.weight",
    "attention.positions.weight",
    "attention.ffn.fc1.weight",
    "fusion.gate.weight",
]


@pytest.mark.parametrize("param_name", PARAMS_TO_CHECK)
def test_full_model_gradient(setup, param_name):
    model, batch = setup
    params = dict(model.named_parameters())
    param = params[param_name]

    model.zero_grad()
    loss = loss_fn(model, batch)
    loss.backward()
    analytic = param.grad if param.grad is not None else np.zeros_like(param.data)

    # Check a random subset of coordinates (full tables are too slow).
    rng = np.random.default_rng(hash(param_name) % 2**32)
    flat = param.data.reshape(-1)
    picks = rng.choice(flat.size, size=min(6, flat.size), replace=False)
    eps = 1e-6
    for index in picks:
        original = flat[index]
        flat[index] = original + eps
        plus = loss_fn(model, batch).item()
        flat[index] = original - eps
        minus = loss_fn(model, batch).item()
        flat[index] = original
        numeric = (plus - minus) / (2 * eps)
        assert analytic.reshape(-1)[index] == pytest.approx(numeric, abs=2e-5, rel=1e-3), (
            f"{param_name}[{index}]"
        )
