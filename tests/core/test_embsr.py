"""Integration-style tests for the EMBSR model and its variants."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import no_grad
from repro.core import EMBSR, EMBSRConfig, VARIANT_BUILDERS, build_embsr, build_fixed_beta
from repro.data import DataLoader, MacroSession, collate, generate_dataset, jd_appliances_config, prepare_dataset


@pytest.fixture(scope="module")
def dataset():
    cfg = jd_appliances_config()
    return prepare_dataset(
        generate_dataset(cfg, 400, seed=9), cfg.operations, min_support=2, name="jd"
    )


@pytest.fixture(scope="module")
def batch(dataset):
    return next(iter(DataLoader(dataset.train, batch_size=16, seed=0)))


@pytest.fixture(scope="module")
def config(dataset):
    return EMBSRConfig(num_items=dataset.num_items, num_ops=dataset.num_operations, dim=12, seed=0)


class TestVariants:
    @pytest.mark.parametrize("name", sorted(VARIANT_BUILDERS))
    def test_forward_backward(self, name, config, dataset, batch):
        model = VARIANT_BUILDERS[name](config)
        logits = model(batch)
        assert logits.shape == (batch.batch_size, dataset.num_items)
        assert np.isfinite(logits.data).all()
        loss = nn.cross_entropy(logits, batch.target_classes)
        loss.backward()
        grads = [p for p in model.parameters() if p.grad is not None]
        assert grads, f"{name} produced no gradients"

    def test_fixed_beta_builder(self, config, batch):
        model = build_fixed_beta(config, 0.3)
        assert np.isfinite(model(batch).data).all()

    def test_unknown_encoder_rejected(self, config):
        with pytest.raises(ValueError):
            EMBSR(config.variant(encoder="transformer"))

    def test_unknown_fusion_rejected(self, config):
        with pytest.raises(ValueError):
            EMBSR(config.variant(fusion="mystery"))


class TestEMBSRBehaviour:
    def test_operations_affect_scores(self, config):
        """Same items, different micro-operations => different predictions.

        This is the paper's Fig. 1 motivation: user 1 and user 2 share the
        macro-item sequence but differ in operations.
        """
        model = build_embsr(config)
        model.eval()
        items = [3, 7, 5]
        a = MacroSession(items, [[0], [1, 2], [0]], target=1)
        b = MacroSession(items, [[0], [0], [0, 3]], target=1)
        with no_grad():
            scores_a = model(collate([a])).data
            scores_b = model(collate([b])).data
        assert not np.allclose(scores_a, scores_b)

    def test_macro_only_variant_ignores_operations(self, config):
        model = VARIANT_BUILDERS["SGNN-Self"](config)
        model.eval()
        items = [3, 7, 5]
        a = MacroSession(items, [[0], [1, 2], [0]], target=1)
        b = MacroSession(items, [[0], [0], [0, 3]], target=1)
        with no_grad():
            scores_a = model(collate([a])).data
            scores_b = model(collate([b])).data
        # SGNN-Self sees no micro-operations; identical item sequences give
        # identical score vectors (op sequences only affect padding layout).
        assert np.allclose(scores_a, scores_b)

    def test_item_order_affects_scores(self, config):
        model = build_embsr(config)
        model.eval()
        a = MacroSession([3, 7, 5], [[0], [0], [0]], target=1)
        b = MacroSession([5, 7, 3], [[0], [0], [0]], target=1)
        with no_grad():
            assert not np.allclose(model(collate([a])).data, model(collate([b])).data)

    def test_batch_padding_consistency(self, config):
        """A session scored alone equals the same session inside a batch."""
        model = build_embsr(config)
        model.eval()
        short = MacroSession([3, 7], [[0], [1]], target=1)
        long = MacroSession([2, 4, 6, 8, 9], [[0]] * 5, target=1)
        with no_grad():
            alone = model(collate([short])).data[0]
            together = model(collate([short, long])).data[0]
        assert np.allclose(alone, together, atol=1e-10)

    def test_single_item_session(self, config):
        model = build_embsr(config)
        model.eval()
        ex = MacroSession([3], [[0, 1]], target=1)
        with no_grad():
            scores = model(collate([ex])).data
        assert np.isfinite(scores).all()

    def test_scores_respect_wk_bound(self, config, batch):
        model = build_embsr(config)
        model.eval()
        with no_grad():
            scores = model(batch).data
        assert np.abs(scores).max() <= config.w_k + 1e-9

    def test_training_reduces_loss(self, dataset, config):
        model = build_embsr(config)
        loader = DataLoader(dataset.train[:128], batch_size=32, shuffle=True, seed=1)
        opt = nn.Adam(model.parameters(), lr=0.01)
        losses = []
        for _ in range(4):
            total = 0.0
            for b in loader:
                opt.zero_grad()
                loss = nn.cross_entropy(model(b), b.target_classes)
                loss.backward()
                nn.clip_grad_norm(model.parameters(), 5.0)
                opt.step()
                total += loss.item()
            losses.append(total)
        assert losses[-1] < losses[0] * 0.9

    def test_variant_config_immutable_copy(self, config):
        changed = config.variant(attention="plain")
        assert changed.attention == "plain"
        assert config.attention == "dyadic"
