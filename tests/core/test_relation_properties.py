"""Property-based tests for the dyadic relation index (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import relation_ids

settings.register_profile("repro-rel", deadline=None, max_examples=50)
settings.load_profile("repro-rel")


ops_arrays = st.integers(1, 12).flatmap(
    lambda num_ops: st.tuples(
        st.just(num_ops),
        st.lists(st.integers(0, num_ops), min_size=1, max_size=8),
    )
)


class TestRelationIdProperties:
    @given(ops_arrays)
    def test_bijective_over_pairs(self, args):
        """Distinct (o_i, o_j) pairs map to distinct relation ids."""
        num_ops, ops = args
        arr = np.array([ops])
        rel = relation_ids(arr, arr, num_ops)
        seen = {}
        for i, oi in enumerate(ops):
            for j, oj in enumerate(ops):
                rid = int(rel[0, i, j])
                pair = (oi, oj)
                if rid in seen:
                    assert seen[rid] == pair
                seen[rid] = pair

    @given(ops_arrays)
    def test_range_bounds(self, args):
        num_ops, ops = args
        arr = np.array([ops])
        rel = relation_ids(arr, arr, num_ops)
        assert rel.min() >= 0
        assert rel.max() <= (num_ops + 1) ** 2 - 1

    @given(ops_arrays)
    def test_diagonal_is_self_pair(self, args):
        num_ops, ops = args
        arr = np.array([ops])
        rel = relation_ids(arr, arr, num_ops)
        for i, o in enumerate(ops):
            assert rel[0, i, i] == o * (num_ops + 1) + o

    @given(ops_arrays)
    def test_transpose_swaps_pair(self, args):
        """r(o_i, o_j) and r(o_j, o_i) decode to swapped pairs."""
        num_ops, ops = args
        arr = np.array([ops])
        rel = relation_ids(arr, arr, num_ops)
        base = num_ops + 1
        decoded = np.stack([rel // base, rel % base], axis=-1)
        assert np.array_equal(decoded[0].transpose(1, 0, 2), decoded[0][..., ::-1])
