"""Unit tests for fusion mechanisms and the score predictor (Eqs. 18-19)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import ConcatMLP, FixedBeta, FusionGate, ScorePredictor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFusionGate:
    def test_output_between_inputs(self, rng):
        gate = FusionGate(8, rng=rng)
        z = Tensor(np.zeros((3, 8)))
        x = Tensor(np.ones((3, 8)))
        out = gate(z, x).data
        assert ((out >= 0.0) & (out <= 1.0)).all()

    def test_gradients(self, rng):
        gate = FusionGate(4, rng=rng)
        z = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        gate(z, x).sum().backward()
        assert z.grad is not None and x.grad is not None


class TestFixedBeta:
    def test_extremes(self, rng):
        z = Tensor(rng.normal(size=(2, 4)))
        x = Tensor(rng.normal(size=(2, 4)))
        assert np.allclose(FixedBeta(1.0)(z, x).data, z.data)
        assert np.allclose(FixedBeta(0.0)(z, x).data, x.data)

    def test_midpoint(self, rng):
        z = Tensor(np.zeros((1, 4)))
        x = Tensor(np.ones((1, 4)))
        assert np.allclose(FixedBeta(0.5)(z, x).data, 0.5)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            FixedBeta(1.5)

    def test_no_parameters(self):
        assert list(FixedBeta(0.5).parameters()) == []


class TestConcatMLP:
    def test_shape_and_grad(self, rng):
        mlp = ConcatMLP(6, rng=rng)
        z = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 6)))
        out = mlp(z, x)
        assert out.shape == (3, 6)
        out.sum().backward()
        assert z.grad is not None


class TestScorePredictor:
    def test_scores_bounded_by_wk(self, rng):
        pred = ScorePredictor(w_k=12.0)
        m = Tensor(rng.normal(size=(4, 8)))
        emb = Tensor(rng.normal(size=(11, 8)))
        scores = pred(m, emb).data
        assert scores.shape == (4, 10)  # padding row excluded
        assert np.abs(scores).max() <= 12.0 + 1e-9  # cosine in [-1, 1] * w_k

    def test_scale_invariance_of_session_vector(self, rng):
        """L2 normalization makes scoring insensitive to vector norms."""
        pred = ScorePredictor(w_k=12.0)
        emb = Tensor(rng.normal(size=(6, 8)))
        m = Tensor(rng.normal(size=(2, 8)))
        m_scaled = Tensor(m.data * 37.0)
        assert np.allclose(pred(m, emb).data, pred(m_scaled, emb).data)

    def test_popularity_bias_removed(self, rng):
        """Scaling one item's embedding must not change its relative score."""
        pred = ScorePredictor(w_k=1.0)
        emb_data = rng.normal(size=(4, 8))
        m = Tensor(rng.normal(size=(1, 8)))
        base = pred(m, Tensor(emb_data)).data
        emb_data2 = emb_data.copy()
        emb_data2[2] *= 100.0  # norm inflation (popular item)
        boosted = pred(m, Tensor(emb_data2)).data
        assert np.allclose(base, boosted)

    def test_perfect_match_gets_max_score(self, rng):
        pred = ScorePredictor(w_k=5.0)
        emb = Tensor(np.vstack([np.zeros(4), np.eye(4)]))
        m = Tensor(np.array([[1.0, 0, 0, 0]]))
        scores = pred(m, emb).data
        assert np.argmax(scores[0]) == 0
        assert abs(scores[0, 0] - 5.0) < 1e-9
