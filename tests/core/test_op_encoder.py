"""Unit tests for the micro-operation GRU encoder (Eqs. 3-4)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import MicroOpEncoder
from repro.nn import Embedding


@pytest.fixture
def setup():
    rng = np.random.default_rng(0)
    emb = Embedding(6, 8, rng=rng, padding_idx=0)
    enc = MicroOpEncoder(8, rng=rng)
    return emb, enc


class TestMicroOpEncoder:
    def test_output_shape(self, setup):
        emb, enc = setup
        ops = np.array([[[1, 2, 0], [3, 0, 0]]])
        mask = np.array([[[1, 1, 0], [1, 0, 0]]], dtype=float)
        out = enc(emb, ops, mask)
        assert out.shape == (1, 2, 8)

    def test_padded_macro_positions_are_zero(self, setup):
        emb, enc = setup
        ops = np.array([[[1, 0], [0, 0]]])
        mask = np.array([[[1, 0], [0, 0]]], dtype=float)
        out = enc(emb, ops, mask)
        assert np.allclose(out.data[0, 1], 0.0)
        assert not np.allclose(out.data[0, 0], 0.0)

    def test_order_sensitivity(self, setup):
        """The sequential pattern (o1, o2) must differ from (o2, o1)."""
        emb, enc = setup
        mask = np.ones((1, 1, 2))
        fwd = enc(emb, np.array([[[1, 2]]]), mask)
        rev = enc(emb, np.array([[[2, 1]]]), mask)
        assert not np.allclose(fwd.data, rev.data)

    def test_trailing_padding_irrelevant(self, setup):
        emb, enc = setup
        short = enc(emb, np.array([[[1, 2]]]), np.ones((1, 1, 2)))
        padded = enc(
            emb,
            np.array([[[1, 2, 4]]]),
            np.array([[[1, 1, 0]]], dtype=float),
        )
        assert np.allclose(short.data[0, 0], padded.data[0, 0])

    def test_gradient_reaches_embeddings(self, setup):
        emb, enc = setup
        out = enc(emb, np.array([[[1, 2]]]), np.ones((1, 1, 2)))
        out.sum().backward()
        assert emb.weight.grad is not None
        assert np.abs(emb.weight.grad[1]).sum() > 0
        assert np.allclose(emb.weight.grad[5], 0.0)  # unused op untouched
