"""Structural tests: each variant wires exactly the components it claims."""

import numpy as np
import pytest

from repro.core import (
    EMBSRConfig,
    VARIANT_BUILDERS,
    build_embsr,
    build_embsr_nf,
    build_embsr_ng,
    build_embsr_ns,
    build_fixed_beta,
    build_rnn_self,
    build_sgnn_abs_self,
    build_sgnn_dyadic,
    build_sgnn_self,
    build_sgnn_seq_self,
)
from repro.core.fusion import ConcatMLP, FixedBeta, FusionGate


@pytest.fixture(scope="module")
def config():
    return EMBSRConfig(num_items=30, num_ops=5, dim=8, seed=0)


class TestVariantArchitectures:
    def test_full_embsr(self, config):
        m = build_embsr(config)
        assert m.op_encoder is not None
        assert m.gnn is not None
        assert m.attention is not None
        assert isinstance(m.fusion, FusionGate)
        assert m.config.attention == "dyadic"

    def test_ns_has_no_attention(self, config):
        m = build_embsr_ns(config)
        assert m.attention is None
        assert m.op_encoder is not None  # sequential pattern kept

    def test_ng_has_no_gnn(self, config):
        m = build_embsr_ng(config)
        assert m.gnn is None
        assert m.op_encoder is None
        assert m.attention is not None  # dyadic pattern kept

    def test_nf_uses_concat_mlp(self, config):
        m = build_embsr_nf(config)
        assert isinstance(m.fusion, ConcatMLP)

    def test_sgnn_self_is_macro_only(self, config):
        m = build_sgnn_self(config)
        assert m.op_encoder is None
        assert m.config.attention == "plain"
        assert m.config.attention_level == "macro"

    def test_sgnn_seq_self_adds_op_gru(self, config):
        m = build_sgnn_seq_self(config)
        assert m.op_encoder is not None
        assert m.config.attention == "plain"

    def test_rnn_self_uses_rnn_encoder(self, config):
        m = build_rnn_self(config)
        assert m.rnn is not None
        assert m.gnn is None

    def test_abs_vs_dyadic_attention_mode(self, config):
        assert build_sgnn_abs_self(config).config.attention == "absolute"
        assert build_sgnn_dyadic(config).config.attention == "dyadic"
        assert build_sgnn_dyadic(config).op_encoder is None

    def test_fixed_beta_fusion(self, config):
        m = build_fixed_beta(config, 0.6)
        assert isinstance(m.fusion, FixedBeta)
        assert m.fusion.beta == 0.6

    def test_registry_complete(self):
        expected = {
            "EMBSR", "EMBSR-NS", "EMBSR-NG", "EMBSR-NF",
            "SGNN-Self", "SGNN-Seq-Self", "RNN-Self",
            "SGNN-Abs-Self", "SGNN-Dyadic",
        }
        assert set(VARIANT_BUILDERS) == expected

    def test_untied_tables_by_default(self, config):
        m = build_embsr(config)
        assert m.gru_op_embedding is not m.op_embedding

    def test_tied_tables_on_request(self, config):
        m = build_embsr(config.variant(tie_op_embeddings=True))
        assert m.gru_op_embedding is m.op_embedding

    def test_param_counts_ordered(self, config):
        """Adding components must add parameters."""
        full = build_embsr(config).num_parameters()
        ns = build_embsr_ns(config).num_parameters()
        sgnn_self = build_sgnn_self(config).num_parameters()
        assert full > ns
        assert full > sgnn_self
