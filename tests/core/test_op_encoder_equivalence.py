"""Equivalence test: batched micro-op encoding == per-sequence GRU unroll.

The batched encoder reshapes [B, n, k] into [B*n, k] and relies on masking;
this test replays each operation chain through the raw GRU cell one step at
a time and demands bit-for-bit agreement.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import MicroOpEncoder
from repro.nn import Embedding


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(5)
    embedding = Embedding(7, 6, rng=rng, padding_idx=0)
    encoder = MicroOpEncoder(6, rng=rng)
    return embedding, encoder


def manual_encode(embedding, encoder, chain):
    """Unroll the GRU cell by hand over one operation chain."""
    h = Tensor(np.zeros((1, 6)))
    for op in chain:
        x = embedding(np.array([op]))
        h = encoder.gru.cell(x, h)
    return h.data[0]


class TestBatchedEquivalence:
    @pytest.mark.parametrize(
        "chains",
        [
            [[1, 2, 3], [4]],
            [[2], [3, 3], [1, 2, 3, 4]],
            [[6]],
        ],
    )
    def test_matches_manual_unroll(self, setup, chains):
        embedding, encoder = setup
        n = len(chains)
        k = max(len(c) for c in chains)
        ops = np.zeros((1, n, k), dtype=np.int64)
        mask = np.zeros((1, n, k))
        for i, chain in enumerate(chains):
            ops[0, i, : len(chain)] = chain
            mask[0, i, : len(chain)] = 1.0
        with no_grad():
            batched = encoder(embedding, ops, mask).data[0]
            for i, chain in enumerate(chains):
                expected = manual_encode(embedding, encoder, chain)
                np.testing.assert_allclose(batched[i], expected, atol=1e-12)

    def test_cross_sequence_isolation(self, setup):
        """One chain's content must not bleed into another's encoding."""
        embedding, encoder = setup
        ops = np.array([[[1, 2], [3, 4]]])
        mask = np.ones((1, 2, 2))
        with no_grad():
            base = encoder(embedding, ops, mask).data[0, 0].copy()
            ops2 = ops.copy()
            ops2[0, 1] = [6, 6]  # change only the second chain
            after = encoder(embedding, ops2, mask).data[0, 0]
        np.testing.assert_allclose(base, after)
