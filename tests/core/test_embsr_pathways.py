"""Fine-grained pathway tests for EMBSR's information flow."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.core import EMBSR, EMBSRConfig, build_embsr
from repro.data import MacroSession, collate


@pytest.fixture(scope="module")
def config():
    return EMBSRConfig(num_items=30, num_ops=5, dim=8, dropout=0.0, seed=3)


def scores(model, items, ops, target=9):
    model.eval()
    with no_grad():
        return model(collate([MacroSession(items, ops, target=target)])).data


class TestInformationFlow:
    def test_distant_item_reaches_prediction_via_star(self, config):
        """The star node propagates long-range information (Sec. IV-B5)."""
        model = build_embsr(config)
        a = scores(model, [1, 2, 3, 4, 5], [[0]] * 5)
        b = scores(model, [7, 2, 3, 4, 5], [[0]] * 5)
        assert not np.allclose(a, b)

    def test_op_chain_on_middle_item_matters(self, config):
        """Micro-ops of a non-final item flow through GRU+GNN+attention."""
        model = build_embsr(config)
        a = scores(model, [1, 2, 3], [[0], [1, 2], [0]])
        b = scores(model, [1, 2, 3], [[0], [3, 4], [0]])
        assert not np.allclose(a, b)

    def test_last_operation_shifts_star_token(self, config):
        """Eq. 13: the assumed next-operation (last op proxy) matters."""
        model = build_embsr(config)
        a = scores(model, [1, 2], [[0], [1]])
        b = scores(model, [1, 2], [[0], [2]])
        assert not np.allclose(a, b)

    def test_op_order_within_chain_matters(self, config):
        """The sequential pattern (Eq. 3) is order-sensitive end-to-end."""
        model = build_embsr(config)
        a = scores(model, [1, 2], [[1, 2], [0]])
        b = scores(model, [1, 2], [[2, 1], [0]])
        assert not np.allclose(a, b)

    def test_revisit_differs_from_single_visit(self, config):
        model = build_embsr(config)
        a = scores(model, [1, 2, 1], [[0], [0], [0]])
        b = scores(model, [1, 2, 3], [[0], [0], [0]])
        assert not np.allclose(a, b)


class TestVariantBlindSpots:
    def test_ns_insensitive_to_op_pair_reordering_across_items(self, config):
        """EMBSR-NS drops the attention: dyadic cross-item relations are
        only seen through the GNN, so reordering ops *within* one item's
        chain still changes its GRU encoding — but a variant without the
        GRU and without attention ops (SGNN-Self) must be fully blind."""
        from repro.core import build_sgnn_self

        model = build_sgnn_self(config)
        a = scores(model, [1, 2], [[1, 2], [0]])
        b = scores(model, [1, 2], [[2, 1], [0]])
        assert np.allclose(a, b)

    def test_ng_still_uses_dyadic_relations(self, config):
        from repro.core import build_embsr_ng

        model = build_embsr_ng(config)
        a = scores(model, [1, 2], [[1], [2]])
        b = scores(model, [1, 2], [[2], [1]])
        assert not np.allclose(a, b)

    def test_macro_level_attention_uses_last_chain_op(self, config):
        """SGNN-Seq-Self represents each macro step by its final op for the
        (plain) attention mask path, and feeds full chains to the GNN."""
        from repro.core import build_sgnn_seq_self

        model = build_sgnn_seq_self(config)
        a = scores(model, [1, 2], [[1, 2], [0]])
        b = scores(model, [1, 2], [[1, 3], [0]])
        assert not np.allclose(a, b)
