"""Unit tests for operation-aware self-attention (Eqs. 12-17)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import OperationAwareSelfAttention, relation_ids


class TestRelationIds:
    def test_formula(self):
        ops = np.array([[1, 2]])
        rel = relation_ids(ops, ops, num_ops=3)
        # r(o_i, o_j) = o_i * 4 + o_j for |O| = 3.
        assert rel[0, 0, 0] == 1 * 4 + 1
        assert rel[0, 0, 1] == 1 * 4 + 2
        assert rel[0, 1, 0] == 2 * 4 + 1

    def test_asymmetry(self):
        """(click, purchase) and (purchase, click) are distinct dyads."""
        ops = np.array([[1, 2]])
        rel = relation_ids(ops, ops, num_ops=3)
        assert rel[0, 0, 1] != rel[0, 1, 0]

    def test_pad_pair_is_zero(self):
        ops = np.array([[0, 1]])
        rel = relation_ids(ops, ops, num_ops=3)
        assert rel[0, 0, 0] == 0

    def test_range(self):
        ops = np.array([[3, 1, 2, 0]])
        rel = relation_ids(ops, ops, num_ops=3)
        assert rel.min() >= 0 and rel.max() <= (3 + 1) ** 2 - 1


@pytest.fixture
def attn():
    return OperationAwareSelfAttention(
        8, num_ops=4, max_len=16, dropout=0.0, rng=np.random.default_rng(0)
    )


class TestOperationAwareSelfAttention:
    def _inputs(self, rng, B=2, T=5):
        x = Tensor(rng.normal(size=(B, T, 8)), requires_grad=True)
        ops = rng.integers(1, 5, size=(B, T))
        mask = np.ones((B, T))
        mask[0, 3:] = 0
        ops = ops * mask.astype(int)
        return x, ops, mask

    def test_output_shape(self, attn):
        rng = np.random.default_rng(1)
        x, ops, mask = self._inputs(rng)
        assert attn(x, ops, mask).shape == x.shape

    def test_padding_invariance(self, attn):
        rng = np.random.default_rng(2)
        x, ops, mask = self._inputs(rng)
        out1 = attn(x, ops, mask)
        x2 = Tensor(x.data.copy())
        x2.data[0, 3:] += 50.0  # perturb padded positions only
        out2 = attn(x2, ops, mask)
        assert np.allclose(out1.data[0, :3], out2.data[0, :3])

    def test_dyadic_differs_from_absolute(self, attn):
        rng = np.random.default_rng(3)
        x, ops, mask = self._inputs(rng)
        dyadic = attn(x, ops, mask, use_dyadic=True)
        plain = attn(x, ops, mask, use_dyadic=False)
        assert not np.allclose(dyadic.data, plain.data)

    def test_dyadic_sensitive_to_operation_order(self, attn):
        """Swapping two operations changes the relation matrix and output."""
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(1, 3, 8)))
        mask = np.ones((1, 3))
        out_a = attn(x, np.array([[1, 2, 3]]), mask, use_dyadic=True)
        out_b = attn(x, np.array([[2, 1, 3]]), mask, use_dyadic=True)
        assert not np.allclose(out_a.data, out_b.data)

    def test_plain_mode_ignores_operations(self, attn):
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(1, 3, 8)))
        mask = np.ones((1, 3))
        out_a = attn(x, np.array([[1, 2, 3]]), mask, use_dyadic=False)
        out_b = attn(x, np.array([[3, 1, 2]]), mask, use_dyadic=False)
        assert np.allclose(out_a.data, out_b.data)

    def test_position_embeddings_break_permutation_symmetry(self, attn):
        rng = np.random.default_rng(6)
        content = rng.normal(size=(8,))
        x = Tensor(np.stack([[content, content, content]]))
        mask = np.ones((1, 3))
        out = attn(x, np.array([[1, 1, 1]]), mask)
        # Same content at every position still yields distinct outputs
        # because keys/values include e_{p_j} and queries differ... here the
        # queries are identical, so outputs are identical row-wise; instead
        # verify that shifting content to other positions changes row 0.
        x2 = Tensor(np.stack([[content * 2, content, content]]))
        out2 = attn(x2, np.array([[1, 1, 1]]), mask)
        assert not np.allclose(out.data[0, 0], out2.data[0, 0])

    def test_gradients_reach_relation_table(self, attn):
        rng = np.random.default_rng(7)
        x, ops, mask = self._inputs(rng)
        out = attn(x, ops, mask, use_dyadic=True)
        # Weighted loss: a plain sum over a LayerNorm output is constant.
        weights = Tensor(rng.normal(size=out.shape))
        (out * weights).sum().backward()
        assert attn.relations.weight.grad is not None
        assert np.abs(attn.relations.weight.grad).sum() > 1e-6

    def test_relation_table_size(self):
        a = OperationAwareSelfAttention(8, num_ops=10, max_len=4, rng=np.random.default_rng(0))
        assert a.relations.weight.shape == ((10 + 1) ** 2, 8)
