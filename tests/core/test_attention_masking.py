"""Masking-correctness tests for the operation-aware attention under batching.

Padding bugs are the classic failure mode of batched attention; these tests
pin the exact guarantees EMBSR's forward relies on.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import OperationAwareSelfAttention


@pytest.fixture
def attn():
    a = OperationAwareSelfAttention(
        6, num_ops=4, max_len=12, dropout=0.0, rng=np.random.default_rng(4)
    )
    a.eval()
    return a


class TestMasking:
    def test_batch_vs_single_consistency(self, attn):
        rng = np.random.default_rng(0)
        x_short = rng.normal(size=(1, 3, 6))
        ops_short = np.array([[1, 2, 3]])
        with no_grad():
            alone = attn(Tensor(x_short), ops_short, np.ones((1, 3))).data

            # Same content padded to length 6 inside a batch of two.
            x_batch = np.zeros((2, 6, 6))
            x_batch[0, :3] = x_short[0]
            x_batch[1] = rng.normal(size=(6, 6))
            ops_batch = np.zeros((2, 6), dtype=np.int64)
            ops_batch[0, :3] = [1, 2, 3]
            ops_batch[1] = [4, 3, 2, 1, 2, 3]
            mask = np.zeros((2, 6))
            mask[0, :3] = 1
            mask[1] = 1
            batched = attn(Tensor(x_batch), ops_batch, mask).data
        np.testing.assert_allclose(alone[0, :3], batched[0, :3], atol=1e-10)

    def test_gradient_blocked_at_padding(self, attn):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(1, 4, 6)), requires_grad=True)
        ops = np.array([[1, 2, 0, 0]])
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out = attn(x, ops, mask)
        # A plain .sum() over a LayerNorm output is constant (zero grad);
        # weight the entries randomly to get a non-degenerate loss.
        weights = Tensor(rng.normal(size=(1, 2, 6)))
        (out[:, :2, :] * weights).sum().backward()
        # Valid positions receive gradient...
        assert np.abs(x.grad[0, :2]).sum() > 0
        # ...while padded KEY positions contribute nothing to valid outputs.
        # (Their rows may still get gradient via their own outputs, which we
        # excluded from the loss above.)
        assert np.allclose(x.grad[0, 2:], 0.0)

    def test_relation_pad_row_never_trained_through_valid_paths(self, attn):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(1, 3, 6)), requires_grad=True)
        ops = np.array([[1, 2, 3]])
        weights = Tensor(rng.normal(size=(1, 3, 6)))
        (attn(x, ops, np.ones((1, 3))) * weights).sum().backward()
        # Relation id 0 is the pad-pad dyad; with all-valid ops it is unused.
        assert np.allclose(attn.relations.weight.grad[0], 0.0)

    def test_all_positions_masked_except_one(self, attn):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(1, 4, 6)))
        ops = np.array([[2, 0, 0, 0]])
        mask = np.array([[1.0, 0.0, 0.0, 0.0]])
        with no_grad():
            out = attn(x, ops, mask).data
        assert np.isfinite(out).all()
