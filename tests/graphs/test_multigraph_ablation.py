"""Tests for the multigraph -> simple-graph ablation hook (Fig. 3 choice)."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import EMBSRConfig, build_embsr
from repro.data import MacroSession, collate
from repro.graphs import BatchGraph


def graph_of(items):
    batch = collate([MacroSession(items, [[0]] * len(items), target=9)])
    return batch, BatchGraph.from_batch(batch)


class TestCollapseParallelEdges:
    def test_parallel_edges_removed(self):
        # 2 -> 3 appears twice (orders 1 and 3).
        _, g = graph_of([1, 2, 3, 2, 3])
        simple = g.collapse_parallel_edges()
        assert g.trans_mask.sum() == 4
        assert simple.trans_mask.sum() == 3
        node3 = 2
        assert g.scatter_in[0, node3].sum() == 2
        assert simple.scatter_in[0, node3].sum() == 1

    def test_chain_unchanged(self):
        _, g = graph_of([1, 2, 3, 4])
        simple = g.collapse_parallel_edges()
        assert np.allclose(simple.scatter_in, g.scatter_in)
        assert np.allclose(simple.scatter_out, g.scatter_out)
        assert np.allclose(simple.trans_mask, g.trans_mask)

    def test_original_untouched(self):
        _, g = graph_of([1, 2, 1, 2])
        before = g.trans_mask.copy()
        g.collapse_parallel_edges()
        assert np.allclose(g.trans_mask, before)

    def test_distinct_pairs_kept(self):
        # 1->2, 2->1, 1->2 again: only the second 1->2 collapses.
        _, g = graph_of([1, 2, 1, 2])
        simple = g.collapse_parallel_edges()
        assert simple.trans_mask[0].tolist() == [1.0, 1.0, 0.0]


class TestModelLevelAblation:
    def test_multigraph_changes_model_output(self):
        """With parallel edges, the multigraph and simple views must differ
        through the full EMBSR forward pass (this is the point of Fig. 3)."""
        config = EMBSRConfig(num_items=20, num_ops=4, dim=8, dropout=0.0, seed=0)
        model = build_embsr(config)
        model.eval()
        batch = collate(
            [MacroSession([1, 2, 3, 2, 3], [[1], [2], [1], [3], [2]], target=4)]
        )
        full_graph = BatchGraph.from_batch(batch)
        with no_grad():
            multi = model(batch, graph=full_graph).data
            simple = model(batch, graph=full_graph.collapse_parallel_edges()).data
        assert not np.allclose(multi, simple)

    def test_no_parallel_edges_identical(self):
        config = EMBSRConfig(num_items=20, num_ops=4, dim=8, dropout=0.0, seed=0)
        model = build_embsr(config)
        model.eval()
        batch = collate([MacroSession([1, 2, 3], [[1], [2], [1]], target=4)])
        graph = BatchGraph.from_batch(batch)
        with no_grad():
            a = model(batch, graph=graph).data
            b = model(batch, graph=graph.collapse_parallel_edges()).data
        assert np.allclose(a, b)
