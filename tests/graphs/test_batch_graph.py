"""Unit tests for batched multigraph arrays (gather/scatter one-hots)."""

import numpy as np
import pytest

from repro.data import DataLoader, MacroSession, collate, generate_dataset, jd_appliances_config, prepare_dataset
from repro.graphs import BatchGraph, SessionGraph


def graph_of(items, ops=None, target=99):
    ops = ops or [[0]] * len(items)
    batch = collate([MacroSession(items, ops, target=target)])
    return batch, BatchGraph.from_batch(batch)


class TestBatchGraphSingle:
    def test_nodes_deduplicated(self):
        _, g = graph_of([1, 2, 3, 2, 3, 4])
        assert g.node_items[0, :4].tolist() == [1, 2, 3, 4]
        assert g.node_mask[0].sum() == 4

    def test_alias_matches_session_graph(self):
        items = [5, 7, 9, 7, 9, 11]
        _, g = graph_of(items)
        ref = SessionGraph(items)
        assert g.alias[0, : len(items)].tolist() == ref.alias

    def test_gather_recovers_items(self):
        batch, g = graph_of([1, 2, 3, 2])
        rec = np.einsum("bnc,bc->bn", g.gather, g.node_items.astype(float))
        assert np.allclose(rec, batch.items * batch.item_mask)

    def test_scatter_degrees_match_multigraph(self):
        items = [1, 2, 3, 2, 3, 4]
        _, g = graph_of(items)
        ref = SessionGraph(items)
        in_deg = g.scatter_in[0].sum(axis=1)
        out_deg = g.scatter_out[0].sum(axis=1)
        for node in range(ref.num_nodes):
            assert in_deg[node] == len(ref.in_edges(node))
            assert out_deg[node] == len(ref.out_edges(node))

    def test_parallel_edges_counted_separately(self):
        # 2 -> 3 twice: node(3) has in-degree 2 (a simple graph would say 1).
        _, g = graph_of([1, 2, 3, 2, 3])
        node3 = 2
        assert g.scatter_in[0, node3].sum() == 2

    def test_single_item_session(self):
        _, g = graph_of([5])
        assert g.trans_mask.sum() == 0
        assert g.node_mask[0].sum() == 1

    def test_micro_gather(self):
        batch, g = graph_of([1, 2], [[0, 1], [2]])
        rec = np.einsum("btc,bc->bt", g.micro_gather, g.node_items.astype(float))
        assert np.allclose(rec, batch.micro_items * batch.micro_mask)


class TestBatchGraphBatched:
    @pytest.fixture(scope="class")
    def batch_and_graph(self):
        cfg = jd_appliances_config()
        ds = prepare_dataset(generate_dataset(cfg, 300, seed=4), cfg.operations, min_support=2)
        batch = next(iter(DataLoader(ds.train, batch_size=32)))
        return batch, BatchGraph.from_batch(batch)

    def test_transition_counts(self, batch_and_graph):
        batch, g = batch_and_graph
        lengths = batch.macro_lengths()
        assert np.allclose(g.trans_mask.sum(axis=1), np.maximum(lengths - 1, 0))

    def test_gather_rows_one_hot(self, batch_and_graph):
        batch, g = batch_and_graph
        sums = g.gather.sum(axis=2)
        assert np.allclose(sums, batch.item_mask)

    def test_each_transition_scattered_once(self, batch_and_graph):
        _, g = batch_and_graph
        # Every valid transition contributes exactly one in and one out entry.
        assert np.allclose(g.scatter_in.sum(axis=1), g.trans_mask)
        assert np.allclose(g.scatter_out.sum(axis=1), g.trans_mask)

    def test_node_items_are_session_items(self, batch_and_graph):
        batch, g = batch_and_graph
        for b in range(batch.batch_size):
            session_items = set(batch.items[b][batch.item_mask[b] > 0].tolist())
            node_items = set(g.node_items[b][g.node_mask[b] > 0].tolist())
            assert session_items == node_items


class TestVectorizedMatchesLoops:
    """``from_batch`` (hot-path, vectorized) vs the per-row reference build."""

    FIELDS = (
        "node_items",
        "node_mask",
        "alias",
        "gather",
        "scatter_in",
        "scatter_out",
        "micro_gather",
        "trans_mask",
    )

    @pytest.fixture(scope="class")
    def batches(self):
        cfg = jd_appliances_config()
        ds = prepare_dataset(generate_dataset(cfg, 300, seed=4), cfg.operations, min_support=2)
        return list(DataLoader(ds.train, batch_size=32))

    def test_every_field_identical_on_real_batches(self, batches):
        for batch in batches:
            fast = BatchGraph.from_batch(batch)
            slow = BatchGraph._from_batch_loops(batch)
            for field in self.FIELDS:
                assert np.array_equal(getattr(fast, field), getattr(slow, field)), field

    def test_identical_on_degenerate_sessions(self):
        # Single-item, all-repeats, and a self-loop-heavy session in one batch.
        batch = collate(
            [
                MacroSession([5], [[0]], target=1),
                MacroSession([3, 3, 3, 3], [[0]] * 4, target=3),
                MacroSession([1, 2, 1, 2, 2], [[0]] * 5, target=2),
            ]
        )
        fast = BatchGraph.from_batch(batch)
        slow = BatchGraph._from_batch_loops(batch)
        for field in self.FIELDS:
            assert np.array_equal(getattr(fast, field), getattr(slow, field)), field
