"""Unit tests for the session multigraph (validated against networkx)."""

import networkx as nx
import pytest

from repro.graphs import SessionGraph


class TestSessionGraph:
    def test_fig3_example(self):
        # The paper's Fig. 3: S^v = [v1, v2, v3, v2, v3, v4].
        g = SessionGraph([1, 2, 3, 2, 3, 4])
        assert g.nodes == [1, 2, 3, 4]
        assert g.alias == [0, 1, 2, 1, 2, 3]
        assert g.num_edges == 5
        orders = [e.order for e in g.edges]
        assert orders == [0, 1, 2, 3, 4]  # edge order preserved

    def test_multigraph_parallel_edges(self):
        g = SessionGraph([1, 2, 3, 2, 3, 4])
        assert g.parallel_edge_count() == 1  # 2->3 appears twice
        parallel = [e for e in g.edges if (e.source, e.target) == (1, 2)]
        assert len(parallel) == 2
        assert parallel[0].order != parallel[1].order

    def test_simple_chain_no_parallel(self):
        g = SessionGraph([1, 2, 3])
        assert g.parallel_edge_count() == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SessionGraph([])

    def test_unmerged_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SessionGraph([1, 1, 2])

    def test_in_out_edges(self):
        g = SessionGraph([1, 2, 1, 3])
        n1 = g.node_of(1)
        assert len(g.out_edges(n1)) == 2  # 1->2 and 1->3
        assert len(g.in_edges(n1)) == 1  # 2->1

    def test_single_node_graph(self):
        g = SessionGraph([5])
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_networkx_roundtrip(self):
        g = SessionGraph([1, 2, 3, 2, 3, 4])
        nxg = g.to_networkx()
        assert isinstance(nxg, nx.MultiDiGraph)
        assert nxg.number_of_nodes() == g.num_nodes
        assert nxg.number_of_edges() == g.num_edges
        # Degrees agree with our in/out edge lists.
        for node in range(g.num_nodes):
            assert nxg.in_degree(node) == len(g.in_edges(node))
            assert nxg.out_degree(node) == len(g.out_edges(node))

    def test_node_order_is_first_appearance(self):
        g = SessionGraph([9, 4, 9, 1])
        assert g.nodes == [9, 4, 1]
